// Package merge implements Scorpion's Merger (§4.3) and its optimizations
// (§6.3): candidate predicates are expanded in decreasing score order by
// greedily absorbing adjacent predicates while the (estimated) influence
// increases.
//
// Two optimizations from the paper:
//
//  1. Top-quartile expansion: only predicates whose score is in the top
//     quartile are used as expansion seeds.
//  2. Cached-tuple approximation: for incrementally removable aggregates,
//     a merged predicate's influence is estimated from each input
//     partition's cardinality and its cached representative tuple, scaled
//     by box-overlap volume fractions — no Scorer calls. We generalize the
//     paper's pairwise n_p formula to the full disjoint partition list: the
//     estimated contribution of leaf q to merged box p* is
//     N_q · Vol(q ∩ p*)/Vol(q), which is identical under the paper's
//     uniform-density assumption and has no special overlap cases.
//
// Merged results can also seed a later run with a lower c value (§8.3.3
// caching experiment) via MergeSeeded.
package merge

import (
	"context"
	"math"
	"sync"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Params configures the Merger.
type Params struct {
	// TopQuartileOnly restricts expansion seeds to the top quartile of
	// candidate scores (§6.3 optimization 1).
	TopQuartileOnly bool
	// UseApproximation enables the cached-tuple influence approximation
	// (§6.3 optimization 2). It requires an incrementally removable
	// aggregate and DT-style candidates (GroupCards/CachedRows populated);
	// otherwise the Merger silently falls back to exact scoring.
	UseApproximation bool
	// AdjacencyEps tolerates floating-point gaps when testing adjacency.
	AdjacencyEps float64
	// MaxRounds caps merge iterations per expansion seed (safety valve;
	// 0 = number of candidates).
	MaxRounds int
	// ExactRescoreTop re-scores the best k merged results with the exact
	// Scorer before returning (default 5). Only matters with approximation.
	ExactRescoreTop int
}

func (p Params) withDefaults() Params {
	if p.AdjacencyEps <= 0 {
		p.AdjacencyEps = 1e-9
	}
	if p.ExactRescoreTop <= 0 {
		p.ExactRescoreTop = 5
	}
	return p
}

// Merger expands and merges candidate predicates.
type Merger struct {
	scorer *influence.Scorer
	space  *predicate.Space
	params Params
	pool   *partition.Pool
	rem    aggregate.Removable
	// Approximation caches: per-outlier-group full states, original values,
	// and per-row singleton states (synchronized: parallel expansion scores
	// merge candidates concurrently).
	groupStates []aggregate.State
	groupOrig   []float64
	rowStatesMu sync.Mutex
	rowStates   map[int]aggregate.State
}

// New builds a Merger over the given scorer and search space. It runs
// serially and uncancellably unless WithPool is called.
func New(scorer *influence.Scorer, space *predicate.Space, params Params) *Merger {
	m := &Merger{
		scorer: scorer,
		space:  space,
		params: params.withDefaults(),
		pool:   partition.NewPool(context.Background(), 1),
	}
	if rem, ok := scorer.Task().Agg.(aggregate.Removable); ok {
		m.rem = rem
		if m.params.UseApproximation {
			task := scorer.Task()
			m.rowStates = make(map[int]aggregate.State)
			for _, g := range task.Outliers {
				st := rem.State(groupValues(task, g))
				m.groupStates = append(m.groupStates, st)
				m.groupOrig = append(m.groupOrig, rem.Recover(st))
			}
		}
	}
	return m
}

// WithPool attaches a worker pool: merge-candidate scoring fans out over
// its workers, and expansion stops early (keeping results so far) once the
// pool's context is cancelled. The merged output is identical for any
// worker count. Returns the receiver for chaining.
func (m *Merger) WithPool(pool *partition.Pool) *Merger {
	if pool != nil {
		m.pool = pool
	}
	return m
}

// rowState returns (and caches) state({value of row}).
func (m *Merger) rowState(row int) aggregate.State {
	m.rowStatesMu.Lock()
	defer m.rowStatesMu.Unlock()
	if st, ok := m.rowStates[row]; ok {
		return st
	}
	task := m.scorer.Task()
	v := 0.0
	if task.AggCol >= 0 {
		v = task.Table.Floats(task.AggCol)[row]
	}
	st := m.rem.State([]float64{v})
	m.rowStates[row] = st
	return st
}

// Merge expands the candidates and returns the deduplicated, descending
// ranked result list.
func (m *Merger) Merge(cands []partition.Candidate) []partition.Candidate {
	return m.MergeSeeded(cands, nil)
}

// MergeSeeded is Merge with expansion seeds — the merged results of a
// previous run with a higher c value (§8.3.3: "Scorpion can initialize the
// merging process to the results of any prior execution with a higher c").
// When seeds are given they REPLACE the usual expansion frontier: only the
// seeds grow (each from where the previous run stopped), while the pool
// still supplies merge partners. This is what makes the cached c sweep
// cheap.
func (m *Merger) MergeSeeded(cands []partition.Candidate, seeds []partition.Candidate) []partition.Candidate {
	if len(cands) == 0 && len(seeds) == 0 {
		return nil
	}
	pool := make([]partition.Candidate, len(cands))
	copy(pool, cands)
	partition.SortByScore(pool)

	expandFrom := pool
	if m.params.TopQuartileOnly && len(pool) >= 4 {
		expandFrom = pool[:(len(pool)+3)/4]
	}
	if len(seeds) > 0 {
		expandFrom = nil
	}
	absorbed := make(map[string]bool)

	var out []partition.Candidate
	// Seeds first: they represent already-grown boxes.
	for _, seed := range seeds {
		out = append(out, m.expand(seed, pool, absorbed))
	}
	for _, c := range expandFrom {
		if absorbed[c.Pred.Key()] {
			continue
		}
		out = append(out, m.expand(c, pool, absorbed))
	}
	// Non-seed candidates that were never expanded nor absorbed still count
	// as results (the paper returns the full resulting list).
	for _, c := range pool {
		if !absorbed[c.Pred.Key()] {
			out = append(out, c)
		}
	}
	out = partition.Dedupe(out)
	m.rescoreTop(out)
	partition.SortByScore(out)
	return out
}

// expand grows one candidate by greedily absorbing adjacent pool members
// while the (estimated) influence increases. Candidate-merge scoring fans
// out over the attached worker pool; the greedy choice — the highest score,
// earliest pool index on ties, strictly above the current score — matches
// the serial scan exactly, so parallel and serial expansions agree.
func (m *Merger) expand(c partition.Candidate, pool []partition.Candidate, absorbed map[string]bool) partition.Candidate {
	cur := c
	curScore := m.score(cur.Pred, pool)
	rounds := m.params.MaxRounds
	if rounds <= 0 {
		rounds = len(pool) + 1
	}
	for r := 0; r < rounds; r++ {
		if m.pool.Cancelled() {
			break
		}
		// Gather the merge candidates cheaply, then score them in parallel.
		type attempt struct {
			idx    int
			merged predicate.Predicate
			score  float64
		}
		var attempts []attempt
		for i, q := range pool {
			if q.Pred.Equal(cur.Pred) {
				continue
			}
			// Only predicates over the same subspace merge (CLIQUE merges
			// same-dimensionality units; merging across attribute sets
			// would drop clauses and balloon straight to the full space).
			if !sameColumns(cur.Pred, q.Pred) {
				continue
			}
			if !m.space.Adjacent(cur.Pred, q.Pred, m.params.AdjacencyEps) {
				continue
			}
			merged := cur.Pred.Merge(q.Pred)
			if merged.Equal(cur.Pred) {
				continue
			}
			attempts = append(attempts, attempt{idx: i, merged: merged})
		}
		if err := m.pool.ForEach(len(attempts), func(i int) {
			attempts[i].score = m.score(attempts[i].merged, pool)
		}); err != nil {
			break // cancelled mid-scoring: unscored attempts must not win
		}
		bestScore := curScore
		var bestPred predicate.Predicate
		bestIdx := -1
		for _, a := range attempts {
			if a.score > bestScore {
				bestScore, bestPred, bestIdx = a.score, a.merged, a.idx
			}
		}
		if bestIdx < 0 {
			break
		}
		absorbed[pool[bestIdx].Pred.Key()] = true
		cur = partition.Candidate{
			Pred:        bestPred,
			Score:       bestScore,
			HoldPenalty: math.Max(cur.HoldPenalty, pool[bestIdx].HoldPenalty),
			InfluencesHoldOut: cur.InfluencesHoldOut ||
				pool[bestIdx].InfluencesHoldOut,
		}
		curScore = bestScore
	}
	cur.Score = curScore
	return cur
}

// score estimates the influence of a predicate, via the cached-tuple
// approximation when enabled and possible, else via the exact Scorer.
func (m *Merger) score(p predicate.Predicate, pool []partition.Candidate) float64 {
	if m.params.UseApproximation && m.rem != nil {
		if v, ok := m.approxInfluence(p, pool); ok {
			return v
		}
	}
	return m.scorer.Influence(p)
}

// approxInfluence estimates inf(O, H, p*, V) from the partition statistics
// alone (§6.3). Returns false when the pool lacks the needed statistics.
func (m *Merger) approxInfluence(pstar predicate.Predicate, pool []partition.Candidate) (float64, bool) {
	task := m.scorer.Task()
	nGroups := len(task.Outliers)
	sawStats := false

	total := 0.0
	for gi := 0; gi < nGroups; gi++ {
		// Accumulate the estimated state of p*(g) from cached tuples.
		var removedState aggregate.State
		removedN := 0.0
		for _, q := range pool {
			if len(q.GroupCards) != nGroups || len(q.CachedRows) != nGroups {
				continue
			}
			frac := overlapFraction(m.space, q.Pred, pstar)
			if frac <= 0 {
				continue
			}
			row := q.CachedRows[gi]
			if row < 0 || q.GroupCards[gi] <= 0 {
				continue
			}
			sawStats = true
			n := q.GroupCards[gi] * frac
			st := scaleState(m.rowState(row), n)
			if removedState == nil {
				removedState = st
			} else {
				removedState = m.rem.Update(removedState, st)
			}
			removedN += n
		}
		if removedN <= 0 || removedState == nil {
			continue
		}
		orig := m.groupOrig[gi]
		updated := m.rem.Recover(m.rem.Remove(m.groupStates[gi], removedState))
		delta := orig - updated
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			continue
		}
		inf := delta
		if task.C != 0 {
			inf = delta / math.Pow(removedN, task.C)
		}
		total += inf * float64(task.Outliers[gi].Direction)
	}
	if !sawStats {
		return 0, false
	}
	outPart := total / float64(nGroups)

	// Hold-out penalty: reuse the worst stored leaf penalty among overlapping
	// partitions (a merged predicate's max_h penalty is at least its parts').
	penalty := 0.0
	for _, q := range pool {
		if overlapFraction(m.space, q.Pred, pstar) > 0 && q.HoldPenalty > penalty {
			penalty = q.HoldPenalty
		}
	}
	return task.Lambda*outPart - (1-task.Lambda)*penalty, true
}

// sameColumns reports whether two predicates constrain identical columns.
func sameColumns(a, b predicate.Predicate) bool {
	if a.NumClauses() != b.NumClauses() {
		return false
	}
	ac, bc := a.Clauses(), b.Clauses()
	for i := range ac {
		if ac[i].Col != bc[i].Col {
			return false
		}
	}
	return true
}

// groupValues projects the aggregate column over a group.
func groupValues(task *influence.Task, g influence.Group) []float64 {
	out := make([]float64, 0, g.Rows.Count())
	if task.AggCol < 0 {
		return make([]float64, g.Rows.Count())
	}
	col := task.Table.Floats(task.AggCol)
	g.Rows.ForEach(func(r int) { out = append(out, col[r]) })
	return out
}

// scaleState multiplies a state by a (possibly fractional) tuple count.
// Every built-in removable aggregate's state is linear in its inputs
// ([sum], [count], [sum,count], [sum,sumsq,count]), so componentwise
// scaling equals update-ing n copies.
func scaleState(s aggregate.State, n float64) aggregate.State {
	out := s.Clone()
	for i := range out {
		out[i] *= n
	}
	return out
}

// overlapFraction estimates the fraction of q's box that lies inside p*,
// assuming uniform density: the product over attributes of the fractional
// overlap of q's clause with p*'s clause (1 when p* leaves the attribute
// unconstrained).
func overlapFraction(space *predicate.Space, q, pstar predicate.Predicate) float64 {
	frac := 1.0
	for _, qc := range q.Clauses() {
		pc, ok := pstar.ClauseOn(qc.Col)
		if !ok {
			continue
		}
		if qc.Kind == relation.Continuous {
			width := qc.Hi - qc.Lo
			lo := math.Max(qc.Lo, pc.Lo)
			hi := math.Min(qc.Hi, pc.Hi)
			if width <= 0 {
				// Point range: inside or out.
				if pc.Lo <= qc.Lo && qc.Lo <= pc.Hi {
					continue
				}
				return 0
			}
			if hi <= lo {
				return 0
			}
			frac *= (hi - lo) / width
		} else {
			if len(qc.Values) == 0 {
				return 0
			}
			common := 0
			i, j := 0, 0
			for i < len(qc.Values) && j < len(pc.Values) {
				switch {
				case qc.Values[i] < pc.Values[j]:
					i++
				case qc.Values[i] > pc.Values[j]:
					j++
				default:
					common++
					i++
					j++
				}
			}
			if common == 0 {
				return 0
			}
			frac *= float64(common) / float64(len(qc.Values))
		}
	}
	// Attributes constrained by p* but not by q: q spans the whole domain
	// there, so the overlap shrinks by p*'s coverage of the domain.
	for _, pc := range pstar.Clauses() {
		if _, ok := q.ClauseOn(pc.Col); ok {
			continue
		}
		d, ok := space.Domain(pc.Col)
		if !ok {
			continue
		}
		if pc.Kind == relation.Continuous {
			width := d.Hi - d.Lo
			if width <= 0 {
				continue
			}
			lo := math.Max(pc.Lo, d.Lo)
			hi := math.Min(pc.Hi, d.Hi)
			if hi <= lo {
				return 0
			}
			frac *= (hi - lo) / width
		} else {
			if d.Card <= 0 {
				continue
			}
			frac *= float64(len(pc.Values)) / float64(d.Card)
		}
	}
	return frac
}

// rescoreTop replaces the approximate scores of the best candidates with
// exact Scorer values so the returned ranking is trustworthy.
func (m *Merger) rescoreTop(cands []partition.Candidate) {
	if !m.params.UseApproximation {
		return
	}
	partition.SortByScore(cands)
	k := m.params.ExactRescoreTop
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		cands[i].Score = m.scorer.Influence(cands[i].Pred)
	}
}
