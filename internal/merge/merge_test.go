package merge

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	dtpkg "github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// gridFixture builds a 1-attribute dataset with a high-valued run in
// x ∈ [40,60) of the outlier group, plus 10-unit grid-cell candidates.
type gridFixture struct {
	scorer *influence.Scorer
	space  *predicate.Space
	table  *relation.Table
	cands  []partition.Candidate
}

func buildGrid(t testing.TB, c float64) gridFixture {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	for i := 0; i < 100; i++ {
		x := float64(i)
		v := 10.0
		if x >= 40 && x < 60 {
			v = 100
		}
		b.MustAppend(relation.Row{relation.S("out"), relation.F(x), relation.F(v)})
	}
	for i := 0; i < 100; i++ {
		b.MustAppend(relation.Row{relation.S("hold"), relation.F(float64(i)), relation.F(10)})
	}
	tbl := b.Build()
	out := relation.NewRowSet(tbl.NumRows())
	hold := relation.NewRowSet(tbl.NumRows())
	for r := 0; r < 100; r++ {
		out.Add(r)
	}
	for r := 100; r < 200; r++ {
		hold.Add(r)
	}
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Avg{},
		AggCol:   tbl.Schema().MustIndex("v"),
		Outliers: []influence.Group{{Key: "out", Rows: out, Direction: influence.TooHigh}},
		HoldOuts: []influence.Group{{Key: "hold", Rows: hold}},
		Lambda:   0.5,
		C:        c,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	space, err := predicate.NewSpace(tbl, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cands []partition.Candidate
	for lo := 0.0; lo < 100; lo += 10 {
		p := predicate.MustNew(predicate.NewRangeClause(
			tbl.Schema().MustIndex("x"), "x", lo, lo+10, lo+10 >= 100))
		cands = append(cands, partition.Candidate{Pred: p, Score: scorer.Influence(p)})
	}
	return gridFixture{scorer: scorer, space: space, table: tbl, cands: cands}
}

func TestMergeGrowsAdjacentCells(t *testing.T) {
	fx := buildGrid(t, 0.2)
	m := New(fx.scorer, fx.space, Params{})
	out := m.Merge(fx.cands)
	if len(out) == 0 {
		t.Fatal("no merged candidates")
	}
	best := out[0]
	// The two high cells [40,50) and [50,60) must merge into [40,60).
	cl := best.Pred.Clauses()
	if len(cl) != 1 || math.Abs(cl[0].Lo-40) > 1e-9 || math.Abs(cl[0].Hi-60) > 1e-9 {
		t.Errorf("best merged = %v, want [40,60)", best.Pred)
	}
	// And it must outscore both inputs.
	for _, c := range fx.cands {
		if best.Score < c.Score {
			t.Errorf("merged score %v below input %v", best.Score, c.Score)
		}
	}
}

func TestMergeOutputSortedAndDeduped(t *testing.T) {
	fx := buildGrid(t, 0.2)
	m := New(fx.scorer, fx.space, Params{})
	out := m.Merge(fx.cands)
	seen := map[string]bool{}
	for i, c := range out {
		if i > 0 && c.Score > out[i-1].Score {
			t.Fatal("output not descending")
		}
		if seen[c.Pred.Key()] {
			t.Fatalf("duplicate predicate %v", c.Pred)
		}
		seen[c.Pred.Key()] = true
	}
}

func TestTopQuartileReducesExpansion(t *testing.T) {
	fxAll := buildGrid(t, 0.2)
	mAll := New(fxAll.scorer, fxAll.space, Params{})
	mAll.Merge(fxAll.cands)
	callsAll := fxAll.scorer.Calls()

	fxQ := buildGrid(t, 0.2)
	mQ := New(fxQ.scorer, fxQ.space, Params{TopQuartileOnly: true})
	mQ.Merge(fxQ.cands)
	callsQ := fxQ.scorer.Calls()

	if callsQ >= callsAll {
		t.Errorf("top-quartile did not reduce Scorer calls: %d vs %d", callsQ, callsAll)
	}
}

func TestMergeEmptyInput(t *testing.T) {
	fx := buildGrid(t, 0.2)
	m := New(fx.scorer, fx.space, Params{})
	if out := m.Merge(nil); out != nil {
		t.Errorf("Merge(nil) = %v, want nil", out)
	}
}

func TestSameColumns(t *testing.T) {
	a := predicate.MustNew(predicate.NewRangeClause(0, "x", 0, 1, false))
	b := predicate.MustNew(predicate.NewRangeClause(0, "x", 1, 2, false))
	c := predicate.MustNew(predicate.NewRangeClause(1, "y", 0, 1, false))
	d := predicate.MustNew(
		predicate.NewRangeClause(0, "x", 0, 1, false),
		predicate.NewRangeClause(1, "y", 0, 1, false),
	)
	if !sameColumns(a, b) {
		t.Error("same-column predicates reported different")
	}
	if sameColumns(a, c) || sameColumns(a, d) {
		t.Error("different-column predicates reported same")
	}
}

func TestOverlapFraction(t *testing.T) {
	fx := buildGrid(t, 0.2)
	xCol := fx.table.Schema().MustIndex("x")
	mk := func(lo, hi float64) predicate.Predicate {
		return predicate.MustNew(predicate.NewRangeClause(xCol, "x", lo, hi, false))
	}
	cases := []struct {
		q, pstar predicate.Predicate
		want     float64
	}{
		{mk(0, 10), mk(0, 10), 1},
		{mk(0, 10), mk(5, 10), 0.5},
		{mk(0, 10), mk(20, 30), 0},
		{mk(0, 10), predicate.True(), 1},
		{mk(0, 100), mk(25, 75), 0.5},
	}
	for _, tc := range cases {
		got := overlapFraction(fx.space, tc.q, tc.pstar)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("overlapFraction(%v, %v) = %v, want %v", tc.q, tc.pstar, got, tc.want)
		}
	}
}

func TestOverlapFractionDiscreteAndUnconstrained(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "d", Kind: relation.Discrete},
		relation.Column{Name: "x", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	for i := 0; i < 8; i++ {
		b.MustAppend(relation.Row{
			relation.S([]string{"a", "b", "c", "e"}[i%4]),
			relation.F(float64(i)),
		})
	}
	tbl := b.Build()
	space, err := predicate.NewSpace(tbl, []string{"d", "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := predicate.MustNew(predicate.NewSetClause(0, "d", []int32{0, 1}))
	pstar := predicate.MustNew(predicate.NewSetClause(0, "d", []int32{1, 2}))
	if got := overlapFraction(space, q, pstar); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("discrete overlap = %v, want 0.5", got)
	}
	// p* constrains x (unconstrained in q): overlap shrinks by p*'s domain
	// coverage. x domain is [0,7]; [0,3.5) covers half.
	pstar2 := predicate.MustNew(predicate.NewRangeClause(1, "x", 0, 3.5, false))
	if got := overlapFraction(space, q, pstar2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("unconstrained-attr overlap = %v, want 0.5", got)
	}
}

func TestScaleState(t *testing.T) {
	s := aggregate.State{2, 4}
	out := scaleState(s, 2.5)
	if out[0] != 5 || out[1] != 10 {
		t.Errorf("scaleState = %v", out)
	}
	if s[0] != 2 {
		t.Error("scaleState mutated input")
	}
}

// TestApproximationAvoidsScorerCalls verifies §6.3 optimization 2 end to
// end: merging DT candidates with approximation must call the Scorer far
// less than exact merging, while still ranking the planted cube first.
func TestApproximationAvoidsScorerCalls(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 250, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 9,
	})
	run := func(useApprox bool) (int64, partition.Candidate) {
		task, space, err := eval.SynthTask(ds, "avg", 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		scorer, err := influence.NewScorer(task)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dtpkg.Run(scorer, space, dtpkg.Params{DisableSampling: true})
		if err != nil {
			t.Fatal(err)
		}
		before := scorer.Calls()
		m := New(scorer, space, Params{TopQuartileOnly: true, UseApproximation: useApprox})
		out := m.Merge(res.Candidates)
		best, ok := partition.Top(out)
		if !ok {
			t.Fatal("no merged output")
		}
		return scorer.Calls() - before, best
	}
	callsExact, bestExact := run(false)
	callsApprox, bestApprox := run(true)
	if callsApprox >= callsExact {
		t.Errorf("approximation did not reduce Scorer calls: %d vs %d", callsApprox, callsExact)
	}
	// Both paths should find influential predicates of comparable quality.
	gOtask, _, _ := eval.SynthTask(ds, "avg", 0.5, 0.2)
	gO := eval.OutlierUnion(gOtask)
	accExact := eval.Score(bestExact.Pred, ds.Table, gO, ds.OuterRows)
	accApprox := eval.Score(bestApprox.Pred, ds.Table, gO, ds.OuterRows)
	if accApprox.F1 < accExact.F1-0.35 {
		t.Errorf("approximation quality collapsed: F1 %v vs exact %v", accApprox.F1, accExact.F1)
	}
}

func TestMergeSeededConverges(t *testing.T) {
	fx := buildGrid(t, 0.2)
	m := New(fx.scorer, fx.space, Params{})
	first := m.Merge(fx.cands)
	best, _ := partition.Top(first)

	// Seeding a fresh merge with the previous result must not lose quality
	// and must converge immediately for the seed.
	fx2 := buildGrid(t, 0.1) // lower c
	m2 := New(fx2.scorer, fx2.space, Params{})
	seeded := m2.MergeSeeded(fx2.cands, []partition.Candidate{best})
	sBest, _ := partition.Top(seeded)
	unseeded := m2.Merge(fx2.cands)
	uBest, _ := partition.Top(unseeded)
	if sBest.Score < uBest.Score-1e-9 {
		t.Errorf("seeded best %v worse than unseeded %v", sBest.Score, uBest.Score)
	}
}
