package dispatch

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/shard"
	"github.com/scorpiondb/scorpion/internal/wire"
)

// testShard builds a minimal remote-shard description over a tiny table —
// enough structure for buildTask to serialize, none of it searched (the
// fake workers answer canned results).
func testShard(t *testing.T) *shard.RemoteShard {
	t.Helper()
	schema, err := relation.NewSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "a", Kind: relation.Continuous},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := relation.NewBuilder(schema)
	for i := 0; i < 40; i++ {
		g := "hold"
		if i%2 == 0 {
			g = "out"
		}
		b.MustAppend(relation.Row{relation.S(g), relation.F(float64(i % 10)), relation.F(10)})
	}
	tbl := b.Build()
	v := tbl.Window(10, 30)
	out := relation.NewRowSet(v.NumRows())
	out.AddRange(0, 5)
	task := &influence.Task{
		Table:    v,
		Lambda:   0.5,
		C:        0.2,
		Outliers: []influence.Group{{Key: "out", Rows: out, Direction: 1}},
	}
	return &shard.RemoteShard{Index: 3, View: v, Task: task, Attrs: []string{"a"}, Workers: 1}
}

func testSpec() scorpion.DispatchSpec {
	return scorpion.DispatchSpec{SQL: "SELECT sum(v), g FROM t GROUP BY g", Algorithm: scorpion.Naive, Bins: 6, TopK: 4}
}

func cannedOutcome(t *testing.T) *partition.Outcome {
	t.Helper()
	p, err := predicate.New(predicate.NewRangeClause(1, "a", 2, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Outcome{Candidates: []partition.Candidate{{Pred: p, Score: 3}}, Work: 7}
}

// okWorker answers every shard search with the canned outcome after
// validating the envelope it received.
func okWorker(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if hits != nil {
			hits.Add(1)
		}
		var task wire.Task
		if err := json.NewDecoder(r.Body).Decode(&task); err != nil {
			t.Errorf("worker: decode task: %v", err)
		}
		if err := task.Validate(); err != nil {
			t.Errorf("worker: invalid task: %v", err)
		}
		if task.Table != "readings" || task.WindowLo != 10 || task.WindowHi != 30 {
			t.Errorf("worker: wrong task envelope: %+v", task)
		}
		json.NewEncoder(w).Encode(wire.EncodeOutcome(cannedOutcome(t)))
	}))
}

func failWorker(status int, hits *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		http.Error(w, "boom", status)
	}))
}

func mustPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	p, err := NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolRequiresPeers(t *testing.T) {
	if _, err := NewPool(Options{}); err == nil {
		t.Fatal("empty peer list accepted")
	}
}

func TestRemoteNilForUnserializableAlgorithms(t *testing.T) {
	p := mustPool(t, Options{Peers: []string{"http://unused"}})
	spec := testSpec()
	spec.Algorithm = scorpion.DT
	if p.For("t", 1).Remote(spec) != nil {
		t.Fatal("DT produced a remote searcher; its parameters do not serialize")
	}
}

func TestDispatchSuccess(t *testing.T) {
	srv := okWorker(t, nil)
	defer srv.Close()
	p := mustPool(t, Options{Peers: []string{srv.URL}})
	search := p.For("readings", 1).Remote(testSpec())
	outcome, ok := search(context.Background(), testShard(t))
	if !ok {
		t.Fatal("dispatch fell back with a healthy worker")
	}
	want := cannedOutcome(t)
	if outcome.Work != want.Work || len(outcome.Candidates) != 1 ||
		outcome.Candidates[0].Pred.Key() != want.Candidates[0].Pred.Key() {
		t.Fatalf("remote outcome drifted: %+v", outcome)
	}
	s := p.Stats()
	if s.Dispatched != 1 || s.Succeeded != 1 || s.Fallbacks != 0 || s.Retries != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesOut == 0 || s.BytesIn == 0 || s.DispatchNanos == 0 {
		t.Fatalf("byte/latency accounting missing: %+v", s)
	}
}

func TestDispatchRetriesAcrossPeers(t *testing.T) {
	var badHits, goodHits atomic.Int64
	bad := failWorker(http.StatusInternalServerError, &badHits)
	defer bad.Close()
	good := okWorker(t, &goodHits)
	defer good.Close()
	// Round-robin starts at peer 0, so the failing peer is hit first.
	p := mustPool(t, Options{Peers: []string{bad.URL, good.URL}, Backoff: time.Millisecond})
	_, ok := p.For("readings", 1).Remote(testSpec())(context.Background(), testShard(t))
	if !ok {
		t.Fatal("dispatch fell back despite a healthy second peer")
	}
	if badHits.Load() != 1 || goodHits.Load() != 1 {
		t.Fatalf("hits: bad %d good %d", badHits.Load(), goodHits.Load())
	}
	s := p.Stats()
	if s.Retries != 1 || s.Succeeded != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// The failed peer is benched: the next dispatch goes straight to the
	// healthy one even though round-robin points at the benched peer.
	if _, ok := p.For("readings", 1).Remote(testSpec())(context.Background(), testShard(t)); !ok {
		t.Fatal("second dispatch fell back")
	}
	if badHits.Load() != 1 {
		t.Fatalf("benched peer was retried (%d hits)", badHits.Load())
	}
}

func TestDispatchFallsBackWhenFleetIsDown(t *testing.T) {
	bad := failWorker(http.StatusInternalServerError, nil)
	defer bad.Close()
	p := mustPool(t, Options{Peers: []string{bad.URL}, Retries: -1})
	if _, ok := p.For("readings", 1).Remote(testSpec())(context.Background(), testShard(t)); ok {
		t.Fatal("dispatch claimed success against a failing fleet")
	}
	s := p.Stats()
	if s.Fallbacks != 1 || s.Succeeded != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDispatchTimesOutHungWorker(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // unread bodies suppress disconnect detection
		select {
		case <-r.Context().Done(): // the coordinator gave up
		case <-release: // test teardown
		}
	}))
	defer func() {
		close(release)
		hung.Close()
	}()
	p := mustPool(t, Options{Peers: []string{hung.URL}, ShardTimeout: 50 * time.Millisecond, Retries: -1})
	start := time.Now()
	_, ok := p.For("readings", 1).Remote(testSpec())(context.Background(), testShard(t))
	if ok {
		t.Fatal("hung worker reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("per-shard timeout did not bound the attempt (%s)", elapsed)
	}
	if s := p.Stats(); s.Fallbacks != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDispatchRejectsVersionMismatch(t *testing.T) {
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		res := wire.EncodeOutcome(cannedOutcome(t))
		res.Version = wire.Version + 1
		json.NewEncoder(w).Encode(res)
	}))
	defer skewed.Close()
	p := mustPool(t, Options{Peers: []string{skewed.URL}, Retries: -1})
	if _, ok := p.For("readings", 1).Remote(testSpec())(context.Background(), testShard(t)); ok {
		t.Fatal("version-skewed result accepted")
	}
}

func TestBenchedPeerIsProbedBeforeReadmission(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var healthz atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			healthz.Add(1)
			w.WriteHeader(http.StatusOK)
			return
		}
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(wire.EncodeOutcome(cannedOutcome(t)))
	}))
	defer srv.Close()
	p := mustPool(t, Options{Peers: []string{srv.URL}, Retries: -1, BenchFor: 20 * time.Millisecond})
	search := p.For("readings", 1).Remote(testSpec())
	if _, ok := search(context.Background(), testShard(t)); ok {
		t.Fatal("failing worker reported success")
	}
	// While benched, the peer is skipped without any HTTP traffic.
	if _, ok := search(context.Background(), testShard(t)); ok {
		t.Fatal("benched-fleet dispatch reported success")
	}
	failing.Store(false)
	time.Sleep(30 * time.Millisecond) // let the bench expire
	if _, ok := search(context.Background(), testShard(t)); !ok {
		t.Fatal("recovered worker not readmitted")
	}
	if healthz.Load() == 0 {
		t.Fatal("peer readmitted without a health probe")
	}
}
