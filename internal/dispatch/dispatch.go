// Package dispatch is the coordinator-side client for remote shard
// workers: it implements scorpion.ShardDispatcher over a fixed list of
// peer URLs (scorpion-server -worker processes), with per-shard timeouts,
// bounded retry with jittered backoff, peer health tracking with probe-
// based recovery, and unconditional local fallback — a dispatch that
// cannot be completed on the fleet simply reports "not handled" and the
// shard coordinator runs that shard in-process.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/shard"
	"github.com/scorpiondb/scorpion/internal/wire"
)

// NewHTTPClient builds the hardened HTTP client the CLI and the dispatch
// pool share: bounded dial/TLS/header phases at the transport so a dead
// host can never wedge a caller, while the overall request duration stays
// governed by per-request contexts (client.Timeout would also cap body
// reads, killing legitimately long explain responses). A zero dialTimeout
// uses 10s.
func NewHTTPClient(dialTimeout time.Duration) *http.Client {
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: dialTimeout, KeepAlive: 30 * time.Second}).DialContext,
			TLSHandshakeTimeout:   dialTimeout,
			ResponseHeaderTimeout: 0, // per-request contexts bound the wait
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   8,
		},
	}
}

// Options tunes a Pool.
type Options struct {
	// Peers are worker base URLs (e.g. "http://host:8081"). Required.
	Peers []string
	// ShardTimeout bounds one dispatch attempt end to end (default 2m).
	ShardTimeout time.Duration
	// Retries is how many additional attempts (on other peers) a failed
	// dispatch gets before falling back local (default 2).
	Retries int
	// Backoff is the base retry delay; attempt k sleeps Backoff·2^k plus
	// up to 50% jitter (default 100ms).
	Backoff time.Duration
	// BenchFor is how long a failed peer sits out before a health probe
	// can readmit it (default 15s).
	BenchFor time.Duration
	// Client overrides the HTTP client (default NewHTTPClient(0)).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Minute
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.BenchFor <= 0 {
		o.BenchFor = 15 * time.Second
	}
	if o.Client == nil {
		o.Client = NewHTTPClient(0)
	}
	return o
}

// Stats is a snapshot of a Pool's dispatch counters; the remote benchmark
// reports overhead and bytes-on-wire from here.
type Stats struct {
	// Dispatched counts shard searches offered to the fleet; Succeeded
	// those answered remotely; Fallbacks those handed back for a local
	// run; Retries every extra attempt after a failure.
	Dispatched, Succeeded, Fallbacks, Retries int64
	// BytesOut / BytesIn are serialized task and result bytes.
	BytesOut, BytesIn int64
	// DispatchNanos is the summed wall-clock of successful dispatches
	// (serialize + HTTP round-trip + decode): the coordinator-side
	// overhead the remote path adds per shard.
	DispatchNanos int64
}

// peer is one worker URL plus its health state.
type peer struct {
	base string

	mu       sync.Mutex
	badUntil time.Time
	wasBad   bool
}

// Pool dispatches shard searches to a fixed peer list.
type Pool struct {
	opts  Options
	peers []*peer
	next  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	dispatched, succeeded, fallbacks, retries atomic.Int64
	bytesOut, bytesIn, dispatchNanos          atomic.Int64
}

// NewPool builds a Pool over the given peers.
func NewPool(opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("dispatch: no peers")
	}
	p := &Pool{opts: opts, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
	for _, u := range opts.Peers {
		p.peers = append(p.peers, &peer{base: u})
	}
	return p, nil
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Dispatched:    p.dispatched.Load(),
		Succeeded:     p.succeeded.Load(),
		Fallbacks:     p.fallbacks.Load(),
		Retries:       p.retries.Load(),
		BytesOut:      p.bytesOut.Load(),
		BytesIn:       p.bytesIn.Load(),
		DispatchNanos: p.dispatchNanos.Load(),
	}
}

// For binds the pool to one catalog table, yielding the ShardDispatcher a
// scorpion.Request carries. gen is the coordinator's catalog generation,
// forwarded informationally (the worker pins on name + row count).
func (p *Pool) For(table string, gen int64) scorpion.ShardDispatcher {
	return &tableDispatcher{pool: p, table: table, gen: gen}
}

type tableDispatcher struct {
	pool  *Pool
	table string
	gen   int64
}

// Remote implements scorpion.ShardDispatcher.
func (d *tableDispatcher) Remote(spec scorpion.DispatchSpec) shard.RemoteSearcher {
	var algo string
	switch spec.Algorithm {
	case scorpion.Naive:
		algo = "naive"
	case scorpion.MC:
		algo = "mc"
	default:
		return nil // DT and friends never dispatch
	}
	return func(ctx context.Context, rs *shard.RemoteShard) (*partition.Outcome, bool) {
		return d.pool.search(ctx, d, algo, spec, rs)
	}
}

// buildTask assembles the wire task for one shard.
func buildTask(d *tableDispatcher, algo string, spec scorpion.DispatchSpec, rs *shard.RemoteShard) *wire.Task {
	lo := rs.View.Off()
	return &wire.Task{
		Version:    wire.Version,
		Table:      d.table,
		Gen:        d.gen,
		Rows:       rs.View.Base().NumRows(),
		SQL:        spec.SQL,
		WindowLo:   lo,
		WindowHi:   lo + rs.View.NumRows(),
		Algorithm:  algo,
		Bins:       spec.Bins,
		TopK:       spec.TopK,
		Epsilon:    spec.Epsilon,
		Confidence: spec.Confidence,
		Attrs:      rs.Attrs,
		Lambda:     rs.Task.Lambda,
		C:          rs.Task.C,
		Perturb:    rs.Task.Perturb,
		Workers:    rs.Workers,
		Domains:    wire.EncodeDomains(rs.Domains),
		Outliers:   wire.EncodeGroups(rs.Task.Outliers),
		HoldOuts:   wire.EncodeGroups(rs.Task.HoldOuts),
	}
}

// search runs the dispatch protocol for one shard: serialize once, then
// up to 1+Retries attempts across healthy peers with jittered backoff
// between them. Any terminal failure returns ok = false — the caller
// falls back to the local search path.
func (p *Pool) search(ctx context.Context, d *tableDispatcher, algo string, spec scorpion.DispatchSpec, rs *shard.RemoteShard) (*partition.Outcome, bool) {
	log := obs.LoggerFrom(ctx)
	start := time.Now()
	p.dispatched.Add(1)
	body, err := json.Marshal(buildTask(d, algo, spec, rs))
	if err != nil {
		log.Warn("dispatch: marshal shard task", "shard", rs.Index, "error", err)
		p.fallbacks.Add(1)
		return nil, false
	}
	attempts := 1 + p.opts.Retries
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			p.retries.Add(1)
			if !sleepCtx(ctx, p.jittered(attempt-1)) {
				break
			}
		}
		pr := p.pickPeer(ctx)
		if pr == nil {
			break // no healthy peer: no point burning more attempts
		}
		outcome, transient, err := p.attempt(ctx, pr, body)
		if err == nil {
			p.succeeded.Add(1)
			p.bytesOut.Add(int64(len(body)))
			p.dispatchNanos.Add(time.Since(start).Nanoseconds())
			log.Debug("dispatch: shard answered remotely",
				"shard", rs.Index, "peer", pr.base, "attempt", attempt)
			return outcome, true
		}
		p.bench(pr)
		level := log.Warn
		if transient {
			level = log.Debug
		}
		level("dispatch: shard attempt failed",
			"shard", rs.Index, "peer", pr.base, "attempt", attempt, "error", err)
	}
	p.fallbacks.Add(1)
	log.Warn("dispatch: falling back to local shard search", "shard", rs.Index, "table", d.table)
	return nil, false
}

// attempt performs one POST /shards/search round-trip against a peer.
// transient marks failures worth a Debug instead of a Warn (the retry
// loop treats both the same).
func (p *Pool) attempt(ctx context.Context, pr *peer, body []byte) (_ *partition.Outcome, transient bool, _ error) {
	actx, cancel := context.WithTimeout(ctx, p.opts.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, pr.base+"/shards/search", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 256<<20))
	if err != nil {
		return nil, true, fmt.Errorf("read response: %w", err)
	}
	if res.StatusCode != http.StatusOK {
		msg := string(data)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, res.StatusCode == http.StatusTooManyRequests,
			fmt.Errorf("worker answered %d: %s", res.StatusCode, msg)
	}
	var wres wire.Result
	if err := json.Unmarshal(data, &wres); err != nil {
		return nil, false, fmt.Errorf("decode result: %w", err)
	}
	outcome, err := wire.DecodeOutcome(&wres)
	if err != nil {
		return nil, false, err
	}
	if outcome.Interrupted {
		// A worker-side deadline or cancellation truncated the candidate
		// stream; splicing it into the combiner would silently skew the
		// answer. (worker.Run refuses to serialize these, so seeing one
		// means a skewed or misbehaving peer.)
		return nil, false, fmt.Errorf("worker answered an interrupted outcome")
	}
	p.bytesIn.Add(int64(len(data)))
	return outcome, false, nil
}

// pickPeer selects the next healthy peer round-robin. A peer whose bench
// has expired is probed (GET /healthz, short deadline) before being
// readmitted, so a still-dead worker costs one cheap probe instead of a
// full shard timeout.
func (p *Pool) pickPeer(ctx context.Context) *peer {
	n := len(p.peers)
	startAt := int(p.next.Add(1)-1) % n
	now := time.Now()
	for i := 0; i < n; i++ {
		pr := p.peers[(startAt+i)%n]
		pr.mu.Lock()
		benched := now.Before(pr.badUntil)
		needsProbe := !benched && pr.wasBad
		pr.mu.Unlock()
		if benched {
			continue
		}
		if needsProbe && !p.probe(ctx, pr) {
			p.bench(pr)
			continue
		}
		return pr
	}
	return nil
}

// probe checks a peer's /healthz; success clears its bad mark.
func (p *Pool) probe(ctx context.Context, pr *peer) bool {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, pr.base+"/healthz", nil)
	if err != nil {
		return false
	}
	res, err := p.opts.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return false
	}
	pr.mu.Lock()
	pr.wasBad = false
	pr.mu.Unlock()
	return true
}

// bench sidelines a peer for BenchFor.
func (p *Pool) bench(pr *peer) {
	pr.mu.Lock()
	pr.badUntil = time.Now().Add(p.opts.BenchFor)
	pr.wasBad = true
	pr.mu.Unlock()
}

// jittered is the backoff before retry k (0-based): Backoff·2^k plus up
// to 50% random jitter, capped at 5s.
func (p *Pool) jittered(k int) time.Duration {
	d := p.opts.Backoff << uint(k)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	p.rngMu.Lock()
	j := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.rngMu.Unlock()
	return d + j
}

// sleepCtx sleeps d or until ctx is done; false means the context won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
