package sqlparse

import (
	"fmt"
	"strings"
)

// SelectStmt is the parsed form of a Scorpion-explainable query: exactly one
// aggregate over one table with a GROUP BY and an optional WHERE.
type SelectStmt struct {
	// Agg is the single aggregate expression in the select list.
	Agg AggExpr
	// SelectCols are the non-aggregate select-list columns (conventionally
	// the group-by columns, echoed for display).
	SelectCols []string
	// Table is the FROM table name.
	Table string
	// Where is the optional filter; nil when absent.
	Where Expr
	// GroupBy lists the grouping columns (non-empty).
	GroupBy []string
}

// AggExpr is an aggregate call, e.g. avg(temp) or count(*).
type AggExpr struct {
	Name string // lower-cased function name
	Arg  string // column name, or "*" (count only)
}

// String renders the statement back to SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	fmt.Fprintf(&b, "%s(%s)", s.Agg.Name, s.Agg.Arg)
	for _, c := range s.SelectCols {
		b.WriteString(", ")
		b.WriteString(c)
	}
	fmt.Fprintf(&b, " FROM %s", s.Table)
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	fmt.Fprintf(&b, " GROUP BY %s", strings.Join(s.GroupBy, ", "))
	return b.String()
}

// Expr is a boolean WHERE expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// BinaryExpr is AND / OR over two boolean sub-expressions.
type BinaryExpr struct {
	Op          string // "and" | "or"
	Left, Right Expr
}

func (*BinaryExpr) exprNode() {}

// String implements fmt.Stringer.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, strings.ToUpper(e.Op), e.Right)
}

// NotExpr negates a boolean sub-expression.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) exprNode() {}

// String implements fmt.Stringer.
func (e *NotExpr) String() string { return fmt.Sprintf("NOT %s", e.Inner) }

// CompareExpr compares a column with a literal: col op literal. Op is one of
// = != < <= > >=. Literal-op-column input is normalized to this form by the
// parser (flipping the operator).
type CompareExpr struct {
	Col string
	Op  string
	Lit Literal
}

func (*CompareExpr) exprNode() {}

// String implements fmt.Stringer.
func (e *CompareExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.Col, e.Op, e.Lit)
}

// InExpr is a set-containment test: col IN (lit, lit, ...).
type InExpr struct {
	Col  string
	List []Literal
}

func (*InExpr) exprNode() {}

// String implements fmt.Stringer.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, l := range e.List {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s IN (%s)", e.Col, strings.Join(parts, ", "))
}

// Literal is a string or numeric constant.
type Literal struct {
	IsNumber bool
	Num      float64
	Str      string
}

// String implements fmt.Stringer.
func (l Literal) String() string {
	if l.IsNumber {
		return fmt.Sprintf("%g", l.Num)
	}
	return fmt.Sprintf("'%s'", strings.ReplaceAll(l.Str, "'", "''"))
}
