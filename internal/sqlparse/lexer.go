package sqlparse

import (
	"strings"
	"unicode"
)

// lexer scans SQL text into tokens.
type lexer struct {
	src []rune
	pos int
}

// Lex tokenizes the input, returning all tokens including a trailing TokEOF.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: []rune(src)}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: string(l.src[start:l.pos]), Pos: start}, nil

	case unicode.IsDigit(c) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		return l.lexNumber(start)

	case c == '-' && l.pos+1 < len(l.src) && (unicode.IsDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '.'):
		l.pos++
		return l.lexNumber(start)

	case c == '\'':
		return l.lexString(start)

	case c == '(' || c == ')' || c == ',' || c == '*':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil

	case c == '=':
		l.pos++
		return Token{Kind: TokSymbol, Text: "=", Pos: start}, nil

	case c == '!':
		l.pos++
		if l.peek() != '=' {
			return Token{}, errorf(start, "unexpected character %q (expected !=)", "!")
		}
		l.pos++
		return Token{Kind: TokSymbol, Text: "!=", Pos: start}, nil

	case c == '<':
		l.pos++
		switch l.peek() {
		case '=':
			l.pos++
			return Token{Kind: TokSymbol, Text: "<=", Pos: start}, nil
		case '>':
			l.pos++
			return Token{Kind: TokSymbol, Text: "!=", Pos: start}, nil
		default:
			return Token{Kind: TokSymbol, Text: "<", Pos: start}, nil
		}

	case c == '>':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: TokSymbol, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: TokSymbol, Text: ">", Pos: start}, nil

	default:
		return Token{}, errorf(start, "unexpected character %q", string(c))
	}
}

func (l *lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(c):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(unicode.IsDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+'):
			seenExp = true
			l.pos++ // consume sign or first exponent digit position handled below
			if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
				// consumed below by the loop increment
			} else {
				l.pos-- // plain digit: let the loop advance normally
			}
		default:
			return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}, nil
		}
		l.pos++
	}
	return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}, nil
}

func (l *lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteRune(c)
		l.pos++
	}
	return Token{}, errorf(start, "unterminated string literal")
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.'
}
