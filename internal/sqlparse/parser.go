package sqlparse

import (
	"strconv"
	"strings"
)

// Parse parses a Scorpion-explainable SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errorf(p.cur().Pos, "unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

// acceptKeyword consumes an identifier token matching kw (case-insensitive).
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errorf(p.cur().Pos, "expected %s, got %q", strings.ToUpper(kw), p.cur().Text)
	}
	return nil
}

// acceptSymbol consumes a symbol token with the given text.
func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().Kind == TokSymbol && p.cur().Text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return errorf(p.cur().Pos, "expected %q, got %q", sym, p.cur().Text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().Kind != TokIdent {
		return "", errorf(p.cur().Pos, "expected identifier, got %q", p.cur().Text)
	}
	return p.advance().Text, nil
}

// reserved keywords that terminate identifier lists.
func isReserved(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "group", "by", "and", "or", "not", "in":
		return true
	}
	return false
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	sawAgg := false
	for {
		if p.cur().Kind != TokIdent {
			return nil, errorf(p.cur().Pos, "expected select-list item, got %q", p.cur().Text)
		}
		name := p.advance().Text
		if p.acceptSymbol("(") {
			// Aggregate call.
			if sawAgg {
				return nil, errorf(p.cur().Pos, "only one aggregate is supported")
			}
			sawAgg = true
			var arg string
			if p.acceptSymbol("*") {
				arg = "*"
			} else {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				arg = a
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			stmt.Agg = AggExpr{Name: strings.ToLower(name), Arg: arg}
		} else {
			if isReserved(name) {
				return nil, errorf(p.cur().Pos, "unexpected keyword %q in select list", name)
			}
			stmt.SelectCols = append(stmt.SelectCols, name)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if !sawAgg {
		return nil, errorf(p.cur().Pos, "select list must contain exactly one aggregate")
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table

	if p.acceptKeyword("where") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if err := p.expectKeyword("group"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = append(stmt.GroupBy, col)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// parseOr parses: and-expr (OR and-expr)*
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

// parseAnd parses: unary-expr (AND unary-expr)*
func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

// parseUnary parses: NOT unary-expr | ( or-expr ) | comparison
func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKeyword("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	if p.acceptSymbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

// flip mirrors a comparison operator for literal-op-column normalization.
func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op // = and != are symmetric
	}
}

// parseComparison parses: col op literal | literal op col | col IN (list)
func (p *parser) parseComparison() (Expr, error) {
	// Literal-first form.
	if p.cur().Kind == TokNumber || p.cur().Kind == TokString {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		op, err := p.parseCompareOp()
		if err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &CompareExpr{Col: col, Op: flip(op), Lit: lit}, nil
	}

	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if isReserved(col) {
		return nil, errorf(p.cur().Pos, "unexpected keyword %q in expression", col)
	}
	if p.acceptKeyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Literal
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			list = append(list, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Col: col, List: list}, nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &CompareExpr{Col: col, Op: op, Lit: lit}, nil
}

func (p *parser) parseCompareOp() (string, error) {
	if p.cur().Kind != TokSymbol {
		return "", errorf(p.cur().Pos, "expected comparison operator, got %q", p.cur().Text)
	}
	switch p.cur().Text {
	case "=", "!=", "<", "<=", ">", ">=":
		return p.advance().Text, nil
	}
	return "", errorf(p.cur().Pos, "expected comparison operator, got %q", p.cur().Text)
}

func (p *parser) parseLiteral() (Literal, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return Literal{}, errorf(t.Pos, "bad number %q: %v", t.Text, err)
		}
		return Literal{IsNumber: true, Num: v}, nil
	case TokString:
		t := p.advance()
		return Literal{Str: t.Text}, nil
	default:
		return Literal{}, errorf(p.cur().Pos, "expected literal, got %q", p.cur().Text)
	}
}
