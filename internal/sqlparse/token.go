// Package sqlparse implements a small SQL front-end for the class of queries
// Scorpion explains (§3.1 of the paper): single-table select-project-group-by
// queries with one aggregate, e.g.
//
//	SELECT avg(temp), time FROM sensors GROUP BY time
//	SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date
//
// The package provides a lexer, an AST, and a recursive-descent parser. WHERE
// clauses support comparisons, IN lists, AND/OR/NOT and parentheses.
package sqlparse

import "fmt"

// TokenKind classifies lexer tokens.
type TokenKind int

const (
	// TokEOF marks end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier (column, table, function name).
	TokIdent
	// TokNumber is a numeric literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokSymbol is punctuation or an operator: ( ) , * = != <> < <= > >=
	TokSymbol
)

// String names the kind for error messages.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a lexed token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// ParseError reports a syntax error with position context.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sqlparse: position %d: %s", e.Pos, e.Msg)
}

func errorf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
