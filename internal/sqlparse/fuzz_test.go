package sqlparse

// FuzzParse is the repo's first Go-native fuzz target: any input must
// either fail Parse with a clean error or produce a statement whose
// String() rendering is a FIXPOINT — it re-parses, and re-rendering yields
// the identical string. Neither direction may panic. The seed corpus
// (testdata/fuzz/FuzzParse plus the f.Add seeds below) comes from
// parser_test.go's accepted queries, its error table, and the edge shapes
// that found real render/re-parse drift.
//
// Run it locally with:
//
//	go test -fuzz=FuzzParse -fuzztime 30s ./internal/sqlparse
import (
	"testing"
)

// fuzzSeeds mirrors the parser test corpus: valid statements (the fixpoint
// cases), every malformed query from TestParseErrors (the clean-error
// cases), and literal/identifier edge shapes.
var fuzzSeeds = []string{
	// Valid statements.
	"SELECT avg(temp), time FROM sensors GROUP BY time",
	"SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date",
	"SELECT count(*), d FROM t WHERE a IN ('x', 'y') AND b >= 3 GROUP BY d",
	"SELECT stddev(v) FROM t WHERE NOT a = 1 OR b != 'z' GROUP BY g",
	"SELECT stddev(temp), hour FROM readings WHERE 5 <= hour AND hour < 20 AND NOT (sensorid IN ('1','2') OR voltage > 2.5) GROUP BY hour",
	"SELECT sum(x), a, b FROM t GROUP BY a, b",
	"SELECT sum(x) FROM t WHERE a <> 5 GROUP BY g",
	"SELECT sum(x) FROM t WHERE name = 'O''Brien' GROUP BY g",
	"SELECT sum(x) FROM t WHERE a > -1.5 AND b < 2e3 GROUP BY g",
	// Malformed statements (clean-error cases).
	"",
	"SELECT FROM t GROUP BY g",
	"SELECT a, b FROM t GROUP BY a",
	"SELECT sum(x), avg(y) FROM t GROUP BY g",
	"SELECT sum(x) FROM t",
	"SELECT sum(x) FROM t GROUP g",
	"SELECT sum(x) FROM t WHERE GROUP BY g",
	"SELECT sum(x) FROM t WHERE a = GROUP BY g",
	"SELECT sum(x) FROM t WHERE a IN () GROUP BY g",
	"SELECT sum(x) FROM t WHERE 'abc GROUP BY g",
	"SELECT sum(x) FROM t GROUP BY g extra",
	"SELECT sum(x FROM t GROUP BY g",
	"SELECT sum(x) FROM t WHERE a ! b GROUP BY g",
	"SELECT sum(x) FROM t WHERE (a = 1 GROUP BY g",
	// Edge shapes: numeric formats, quoting, operators, unicode.
	"SELECT sum(x) FROM t WHERE a = 0.30000000000000004 GROUP BY g",
	"SELECT sum(x) FROM t WHERE a = 1e300 AND b = -0 GROUP BY g",
	"SELECT sum(x) FROM t WHERE s = '' GROUP BY g",
	"SELECT sum(x) FROM t WHERE s = '''' GROUP BY g",
	"select sum(x) from t where not not a = 1 group by g",
	"SELECT sum(x) FROM t WHERE a IN ('a','a','a') GROUP BY g",
	"SELECT sum(x) FROM t WHERE ((a = 1)) GROUP BY g",
	"SELECT sum(x) FROM t WHERE s = 'héllo' GROUP BY g",
	"@",
}

func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejected cleanly — fine
		}
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output does not re-parse:\n  input:    %q\n  rendered: %q\n  error:    %v",
				sql, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("render→parse→render is not a fixpoint:\n  input:  %q\n  first:  %q\n  second: %q",
				sql, rendered, got)
		}
	})
}
