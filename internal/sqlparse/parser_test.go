package sqlparse

import (
	"strings"
	"testing"
)

func TestParseQ1(t *testing.T) {
	stmt, err := Parse("SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stmt.Agg.Name != "avg" || stmt.Agg.Arg != "temp" {
		t.Errorf("Agg = %+v", stmt.Agg)
	}
	if stmt.Table != "sensors" {
		t.Errorf("Table = %q", stmt.Table)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "time" {
		t.Errorf("GroupBy = %v", stmt.GroupBy)
	}
	if len(stmt.SelectCols) != 1 || stmt.SelectCols[0] != "time" {
		t.Errorf("SelectCols = %v", stmt.SelectCols)
	}
	if stmt.Where != nil {
		t.Errorf("Where = %v, want nil", stmt.Where)
	}
}

func TestParseExpenseQuery(t *testing.T) {
	stmt, err := Parse("SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmp, ok := stmt.Where.(*CompareExpr)
	if !ok {
		t.Fatalf("Where = %T", stmt.Where)
	}
	if cmp.Col != "candidate" || cmp.Op != "=" || cmp.Lit.Str != "Obama" {
		t.Errorf("Where = %+v", cmp)
	}
}

func TestParseComplexWhere(t *testing.T) {
	stmt, err := Parse(`SELECT stddev(temp), hour FROM readings
		WHERE 5 <= hour AND hour < 20 AND NOT (sensorid IN ('1','2') OR voltage > 2.5)
		GROUP BY hour`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Literal-first comparison must be normalized to col-first.
	and1, ok := stmt.Where.(*BinaryExpr)
	if !ok || and1.Op != "and" {
		t.Fatalf("Where = %v", stmt.Where)
	}
	// Depth-first leftmost leaf: 5 <= hour → hour >= 5.
	leftmost := and1.Left.(*BinaryExpr).Left.(*CompareExpr)
	if leftmost.Col != "hour" || leftmost.Op != ">=" || leftmost.Lit.Num != 5 {
		t.Errorf("normalized literal-first compare = %+v", leftmost)
	}
	// The NOT subtree exists.
	if _, ok := and1.Right.(*NotExpr); !ok {
		t.Errorf("right subtree = %T, want *NotExpr", and1.Right)
	}
}

func TestParseCountStar(t *testing.T) {
	stmt, err := Parse("SELECT count(*), day FROM t GROUP BY day")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stmt.Agg.Name != "count" || stmt.Agg.Arg != "*" {
		t.Errorf("Agg = %+v", stmt.Agg)
	}
}

func TestParseMultipleGroupBy(t *testing.T) {
	stmt, err := Parse("SELECT sum(x), a, b FROM t GROUP BY a, b")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.GroupBy) != 2 || stmt.GroupBy[0] != "a" || stmt.GroupBy[1] != "b" {
		t.Errorf("GroupBy = %v", stmt.GroupBy)
	}
}

func TestParseNotEqualVariants(t *testing.T) {
	for _, q := range []string{
		"SELECT sum(x) FROM t WHERE a != 5 GROUP BY g",
		"SELECT sum(x) FROM t WHERE a <> 5 GROUP BY g",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		cmp := stmt.Where.(*CompareExpr)
		if cmp.Op != "!=" {
			t.Errorf("op = %q, want !=", cmp.Op)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt, err := Parse("SELECT sum(x) FROM t WHERE name = 'O''Brien' GROUP BY g")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmp := stmt.Where.(*CompareExpr)
	if cmp.Lit.Str != "O'Brien" {
		t.Errorf("escaped string = %q", cmp.Lit.Str)
	}
}

func TestParseNegativeAndScientificNumbers(t *testing.T) {
	stmt, err := Parse("SELECT sum(x) FROM t WHERE a > -1.5 AND b < 2e3 GROUP BY g")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and := stmt.Where.(*BinaryExpr)
	if got := and.Left.(*CompareExpr).Lit.Num; got != -1.5 {
		t.Errorf("negative literal = %v", got)
	}
	if got := and.Right.(*CompareExpr).Lit.Num; got != 2000 {
		t.Errorf("scientific literal = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t GROUP BY g",
		"SELECT a, b FROM t GROUP BY a", // no aggregate
		"SELECT sum(x), avg(y) FROM t GROUP BY g",   // two aggregates
		"SELECT sum(x) FROM t",                      // missing group by
		"SELECT sum(x) FROM t GROUP g",              // missing BY
		"SELECT sum(x) FROM t WHERE GROUP BY g",     // empty where
		"SELECT sum(x) FROM t WHERE a = GROUP BY g", // missing literal
		"SELECT sum(x) FROM t WHERE a IN () GROUP BY g",
		"SELECT sum(x) FROM t WHERE 'abc GROUP BY g",   // unterminated string
		"SELECT sum(x) FROM t GROUP BY g extra",        // trailing tokens
		"SELECT sum(x FROM t GROUP BY g",               // unclosed paren
		"SELECT sum(x) FROM t WHERE a ! b GROUP BY g",  // bad operator
		"SELECT sum(x) FROM t WHERE (a = 1 GROUP BY g", // unclosed where paren
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestStmtStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT avg(temp), time FROM sensors GROUP BY time",
		"SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date",
		"SELECT count(*), d FROM t WHERE a IN ('x', 'y') AND b >= 3 GROUP BY d",
		"SELECT stddev(v) FROM t WHERE NOT a = 1 OR b != 'z' GROUP BY g",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		// Rendering must itself re-parse to an identical rendering.
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", stmt.String(), err)
		}
		if stmt.String() != again.String() {
			t.Errorf("round trip drifted:\n  first:  %s\n  second: %s", stmt.String(), again.String())
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Lex("SELECT a")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Errorf("positions = %d,%d", toks[0].Pos, toks[1].Pos)
	}
	_, err = Lex("a @ b")
	if err == nil {
		t.Error("expected lex error for @")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Errorf("error type = %T", err)
	} else if !strings.Contains(pe.Error(), "position 2") {
		t.Errorf("error = %v", pe)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}
