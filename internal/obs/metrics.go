// Package obs is the telemetry spine for the whole serving path: a
// stdlib-only metrics registry (counters, gauges, histograms with
// Prometheus-text and JSON exposition), lightweight phase spans with
// parent/child links, and log/slog helpers for request-scoped logging.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instruments, and every method on a nil instrument or nil *Span is a
// no-op. Code under instrumentation therefore never branches on "is
// telemetry on" — it calls through unconditionally, and the disabled
// path costs one nil check per call site.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. Instruments are created on first
// use and live for the registry's lifetime; repeated lookups with the
// same name and labels return the same instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // insertion-ordered family names
	funcs    []func(emit EmitFunc)
}

// EmitFunc receives one sample from a scrape-time collector. Labels are
// alternating key, value pairs.
type EmitFunc func(name, typ string, value float64, labels ...string)

type family struct {
	name   string
	typ    string // "counter", "gauge", "histogram"
	mu     sync.Mutex
	series map[string]metric // label-key -> instrument
	keys   []string          // insertion-ordered label keys
}

type metric interface {
	labelPairs() []string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (r *Registry) family(name, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, series: map[string]metric{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	return f
}

// RegisterFunc adds a scrape-time collector: fn is invoked on every
// exposition and emits samples for state owned elsewhere (queue depths,
// cache counters) without double-counting into registry instruments.
func (r *Registry) RegisterFunc(fn func(emit EmitFunc)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, fn)
	r.mu.Unlock()
}

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		labels = append(labels[:len(labels):len(labels)], "")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(p.v))
	}
	return b.String()
}

func (f *family) lookup(labels []string, make func(pairs []string) metric) metric {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = make(append([]string(nil), labels...))
		f.series[key] = m
		f.keys = append(f.keys, key)
	}
	return m
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits  atomic.Uint64 // float64 bits
	pairs []string
}

func (c *Counter) labelPairs() []string { return c.pairs }

// Counter returns (creating if needed) the counter with the given name
// and alternating label key/value pairs. Nil-safe.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.family(name, "counter").lookup(labels, func(p []string) metric { return &Counter{pairs: p} })
	c, _ := m.(*Counter)
	return c
}

// Add increments the counter by n (negative deltas are ignored). No-op
// on a nil counter.
func (c *Counter) Add(n float64) {
	if c == nil || n < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + n)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits  atomic.Uint64
	pairs []string
}

func (g *Gauge) labelPairs() []string { return g.pairs }

// Gauge returns (creating if needed) the gauge with the given name and
// labels. Nil-safe.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.family(name, "gauge").lookup(labels, func(p []string) metric { return &Gauge{pairs: p} })
	g, _ := m.(*Gauge)
	return g
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative). No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram buckets, tuned for latencies in
// seconds (the same spread Prometheus clients default to).
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, plus +Inf at the end
	sumBits atomic.Uint64
	pairs   []string
}

func (h *Histogram) labelPairs() []string { return h.pairs }

// Histogram returns (creating if needed) a histogram with the given
// bucket upper bounds (DefBuckets if nil) and labels. Nil-safe.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.family(name, "histogram").lookup(labels, func(p []string) metric {
		b := buckets
		if len(b) == 0 {
			b = DefBuckets
		}
		bounds := append([]float64(nil), b...)
		sort.Float64s(bounds)
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1), pairs: p}
	})
	h, _ := m.(*Histogram)
	return h
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (families sorted by name, series by label key).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	funcs := append([]func(emit EmitFunc){}, r.funcs...)
	r.mu.Unlock()

	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		series := make(map[string]metric, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		f.mu.Unlock()
		sort.Strings(keys)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			switch m := series[k].(type) {
			case *Counter:
				writeSample(w, f.name, k, m.Value())
			case *Gauge:
				writeSample(w, f.name, k, m.Value())
			case *Histogram:
				var cum uint64
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					writeSample(w, f.name+"_bucket", mergeKey(k, "le", strconv.FormatFloat(b, 'g', -1, 64)), float64(cum))
				}
				cum += m.counts[len(m.bounds)].Load()
				writeSample(w, f.name+"_bucket", mergeKey(k, "le", "+Inf"), float64(cum))
				writeSample(w, f.name+"_sum", k, m.Sum())
				writeSample(w, f.name+"_count", k, float64(cum))
			}
		}
	}

	// Scrape-time collectors, grouped per family in emission order.
	type sample struct {
		key string
		val float64
	}
	extra := map[string][]sample{}
	extraTyp := map[string]string{}
	var extraNames []string
	emit := func(name, typ string, value float64, labels ...string) {
		if _, ok := extraTyp[name]; !ok {
			extraTyp[name] = typ
			extraNames = append(extraNames, name)
		}
		extra[name] = append(extra[name], sample{labelKey(labels), value})
	}
	for _, fn := range funcs {
		fn(emit)
	}
	sort.Strings(extraNames)
	for _, n := range extraNames {
		fmt.Fprintf(w, "# TYPE %s %s\n", n, extraTyp[n])
		for _, s := range extra[n] {
			writeSample(w, n, s.key, s.val)
		}
	}
	return nil
}

func writeSample(w io.Writer, name, key string, v float64) {
	if key == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, key, formatValue(v))
	}
}

func mergeKey(key, k, v string) string {
	p := k + "=" + strconv.Quote(v)
	if key == "" {
		return p
	}
	return key + "," + p
}

// Snapshot returns the registry as a JSON-ready map:
// family name -> series label key ("" for unlabelled) -> value. Histograms
// render as {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	funcs := append([]func(emit EmitFunc){}, r.funcs...)
	r.mu.Unlock()
	for _, n := range names {
		f := fams[n]
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		series := make(map[string]metric, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		f.mu.Unlock()
		fam := map[string]any{}
		for _, k := range keys {
			label := k
			if label == "" {
				label = "_"
			}
			switch m := series[k].(type) {
			case *Counter:
				fam[label] = m.Value()
			case *Gauge:
				fam[label] = m.Value()
			case *Histogram:
				buckets := map[string]uint64{}
				var cum uint64
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					buckets[strconv.FormatFloat(b, 'g', -1, 64)] = cum
				}
				fam[label] = map[string]any{
					"count":   m.Count(),
					"sum":     m.Sum(),
					"buckets": buckets,
				}
			}
		}
		out[n] = fam
	}
	emit := func(name, typ string, value float64, labels ...string) {
		fam, _ := out[name].(map[string]any)
		if fam == nil {
			fam = map[string]any{}
			out[name] = fam
		}
		label := labelKey(labels)
		if label == "" {
			label = "_"
		}
		fam[label] = value
	}
	for _, fn := range funcs {
		fn(emit)
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
