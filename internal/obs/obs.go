package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

type registryCtxKey struct{}
type loggerCtxKey struct{}
type requestIDCtxKey struct{}

// ContextWithRegistry returns ctx carrying the metrics registry.
func ContextWithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryCtxKey{}, r)
}

// RegistryFrom returns the registry in ctx, or nil (all registry
// operations on nil are no-ops).
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryCtxKey{}).(*Registry)
	return r
}

var discard = slog.New(slog.DiscardHandler)

// ContextWithLogger returns ctx carrying a request-scoped logger.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerCtxKey{}, l)
}

// LoggerFrom returns the logger in ctx, or a discard logger so callers
// can log unconditionally.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return discard
	}
	if l, ok := ctx.Value(loggerCtxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return discard
}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// RequestID returns the request ID in ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}

// ParseLevel maps a -log-level flag value to a slog.Level (default info).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a slog.Logger writing to w in the given format
// ("json" or text) at the given level string.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: ParseLevel(level)}
	var h slog.Handler
	if strings.EqualFold(strings.TrimSpace(format), "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}
