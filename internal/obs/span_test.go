package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("explain")
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("SpanFrom should return the installed root")
	}

	ctx2, plan := StartSpan(ctx, "plan")
	plan.SetAttr("shards", 4)
	plan.End()
	if SpanFrom(ctx2) != plan {
		t.Fatal("StartSpan must install the child as current")
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("shard.search")
			s.SetAttr("work", 10)
			s.End()
		}()
	}
	wg.Wait()
	root.Child("combine").End()
	root.End()

	n := root.Snapshot()
	if n.Name != "explain" {
		t.Fatalf("root name = %q", n.Name)
	}
	if len(n.Children) != 6 {
		t.Fatalf("children = %d, want 6", len(n.Children))
	}
	if n.Children[0].Name != "plan" || n.Children[0].Attrs["shards"] != 4 {
		t.Fatalf("plan child wrong: %+v", n.Children[0])
	}
	if n.Find("combine") == nil || n.Find("shard.search") == nil {
		t.Fatal("Find missed recorded children")
	}
	if n.Find("nope") != nil {
		t.Fatal("Find invented a node")
	}
	for _, c := range n.Children {
		if c.StartMS < 0 || c.DurationMS < 0 {
			t.Fatalf("negative timing in %+v", c)
		}
	}

	var sb strings.Builder
	root.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{"explain", "plan", "shards=4", "combine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTree output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanChildCap(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < maxChildren+10; i++ {
		root.Child("c").End()
	}
	root.End()
	n := root.Snapshot()
	if len(n.Children) != maxChildren {
		t.Fatalf("children = %d, want cap %d", len(n.Children), maxChildren)
	}
	if n.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", n.Dropped)
	}
}

func TestSpanAttrOverwrite(t *testing.T) {
	s := NewSpan("s")
	s.SetAttr("k", 1)
	s.SetAttr("k", 2)
	s.End()
	n := s.Snapshot()
	if len(n.Attrs) != 1 || n.Attrs["k"] != 2 {
		t.Fatalf("attrs = %v, want single k=2", n.Attrs)
	}
}
