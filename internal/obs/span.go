package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxChildren caps the fan-out recorded under one span so batch loops
// (NAIVE flushes, MC generations) cannot grow a trace without bound.
// Further children are counted, not stored.
const maxChildren = 64

// Span is one timed phase in a trace tree. All methods are safe on a
// nil receiver and safe for concurrent use, so instrumented code calls
// through unconditionally: when tracing is off every call is a no-op.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
	dropped  int
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

type spanCtxKey struct{}

// NewSpan starts a root span. Callers that want tracing create the root
// and thread it via ContextWithSpan; everything downstream uses
// StartSpan/Child and stays no-op when no root was installed.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the current span in ctx, or nil when tracing is off.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the current span in ctx and returns a
// derived context carrying it. When ctx has no span (tracing off) it
// returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return ContextWithSpan(ctx, child), child
}

// Child starts and attaches a child span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, child)
	} else {
		s.dropped++
		child = nil
	}
	s.mu.Unlock()
	if child == nil {
		return nil
	}
	return child
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// End marks the span finished. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end-start (or elapsed-so-far for a live span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Node is the serializable form of a span subtree. StartMS is the
// offset from the snapshot root's start time.
type Node struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Dropped    int            `json:"dropped_children,omitempty"`
	Children   []Node         `json:"children,omitempty"`
}

// Snapshot renders the span subtree rooted at s, with start offsets
// relative to s. Returns nil for a nil span.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	n := s.snapshot(s.start)
	return &n
}

func (s *Span) snapshot(origin time.Time) Node {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	dropped := s.dropped
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	n := Node{
		Name:       s.name,
		StartMS:    roundMS(s.start.Sub(origin)),
		DurationMS: roundMS(end.Sub(s.start)),
		Dropped:    dropped,
	}
	if len(attrs) > 0 {
		n.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range children {
		n.Children = append(n.Children, c.snapshot(origin))
	}
	return n
}

func roundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// WriteTree prints an indented rendering of the subtree with durations
// and attrs, for the CLI's -trace flag. No-op on nil.
func (s *Span) WriteTree(w io.Writer) {
	n := s.Snapshot()
	if n == nil {
		return
	}
	writeNode(w, n, 0)
}

func writeNode(w io.Writer, n *Node, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s %.3fms", n.Name, n.DurationMS)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, " {")
		for i, k := range keys {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%s=%v", k, n.Attrs[k])
		}
		fmt.Fprint(w, "}")
	}
	if n.Dropped > 0 {
		fmt.Fprintf(w, " (+%d dropped)", n.Dropped)
	}
	fmt.Fprintln(w)
	for i := range n.Children {
		writeNode(w, &n.Children[i], depth+1)
	}
}

// Find returns the first node named name in a depth-first walk of the
// snapshot, or nil. Test helper for asserting trace structure.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for i := range n.Children {
		if m := n.Children[i].Find(name); m != nil {
			return m
		}
	}
	return nil
}
