package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from parallel workers;
// run under -race this is the data-race gate for the whole package.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc(func(emit EmitFunc) {
		emit("scrape_side", "gauge", 7, "k", "v")
	})
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := []string{"worker", string(rune('a' + w%4))}
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", label...).Inc()
				r.Gauge("hammer_gauge").Add(1)
				r.Histogram("hammer_seconds", nil).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("hammer_total", "worker", l).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %v, want %d", total, workers*iters)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestPrometheusGolden pins the text exposition format exactly.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_requests_total", "route", "/explain", "status", "200").Add(3)
	r.Counter("zz_requests_total", "route", "/tables", "status", "200").Inc()
	r.Gauge("aa_queue_depth").Set(2)
	h := r.Histogram("mm_wait_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.RegisterFunc(func(emit EmitFunc) {
		emit("ff_cache_hits_total", "counter", 9)
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE aa_queue_depth gauge
aa_queue_depth 2
# TYPE mm_wait_seconds histogram
mm_wait_seconds_bucket{le="0.1"} 1
mm_wait_seconds_bucket{le="1"} 2
mm_wait_seconds_bucket{le="+Inf"} 3
mm_wait_seconds_sum 5.55
mm_wait_seconds_count 3
# TYPE zz_requests_total counter
zz_requests_total{route="/explain",status="200"} 3
zz_requests_total{route="/tables",status="200"} 1
# TYPE ff_cache_hits_total counter
ff_cache_hits_total 9
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	snap := r.Snapshot()
	fam, ok := snap["zz_requests_total"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing zz_requests_total: %v", snap)
	}
	if v := fam[`route="/explain",status="200"`]; v != 3.0 {
		t.Fatalf("snapshot counter = %v, want 3", v)
	}
	if fam, ok := snap["ff_cache_hits_total"].(map[string]any); !ok || fam["_"] != 9.0 {
		t.Fatalf("snapshot func metric = %v", snap["ff_cache_hits_total"])
	}
}

// TestNilSafety exercises every instrument and span method through nil
// receivers: the telemetry-off path must never panic and never allocate.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	var s *Span
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.SetAttr("k", 1)
	s.End()
	if s.Child("c") != nil {
		t.Fatal("nil span Child should be nil")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if SpanFrom(ctx) != nil || RegistryFrom(ctx) != nil || RequestID(ctx) != "" {
		t.Fatal("empty context must read as telemetry-off")
	}
	ctx2, sp := StartSpan(ctx, "phase")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a root must be a no-op")
	}

	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "phase")
		sp.SetAttr("k", nil)
		sp.End()
		c.Inc()
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("telemetry-off path allocates %v times per op, want 0", allocs)
	}
	LoggerFrom(ctx).Debug("discarded")
}
