package shard

import (
	"context"
	"fmt"
	"testing"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// planTable builds an n-row single-column table for planner tests.
func planTable(t testing.TB, n int) *relation.Table {
	t.Helper()
	schema := relation.MustSchema(relation.Column{Name: "x", Kind: relation.Continuous})
	b := relation.NewBuilder(schema)
	for i := 0; i < n; i++ {
		b.MustAppend(relation.Row{relation.F(float64(i))})
	}
	return b.Build()
}

// TestPlanGroupAware: when the flagged rows cluster in one region, the cut
// points land inside that region — every shard gets a near-equal share of
// the anchor rows, and the unflagged tail pools into the last shard.
func TestPlanGroupAware(t *testing.T) {
	tbl := planTable(t, 1000)
	anchor := relation.NewRowSet(1000)
	for i := 0; i < 100; i++ { // outliers live in rows [0, 100)
		anchor.Add(i)
	}
	views := Plan(tbl, anchor, 4)
	if len(views) != 4 {
		t.Fatalf("got %d views", len(views))
	}
	// Disjoint + covering, in order.
	next := 0
	for i, v := range views {
		if v.Off() != next {
			t.Fatalf("view %d: off %d want %d", i, v.Off(), next)
		}
		next = v.Off() + v.Len()
	}
	if next != 1000 {
		t.Fatalf("views cover %d rows", next)
	}
	// Group-aware: the searched slices split the anchored region [0, 100)
	// into near-equal anchor shares, and the anchor-free tail is its own
	// slice (its local search is skipped; the exact re-score covers it).
	for i, want := range []int{33, 33, 34} {
		got := anchor.CountRange(views[i].Off(), views[i].Off()+views[i].Len())
		if got != want {
			t.Errorf("shard %d: %d anchor rows, want %d", i, got, want)
		}
	}
	if tail := views[3]; tail.Off() != 100 || tail.Len() != 900 {
		t.Errorf("tail shard [%d,+%d), want the whole unflagged region [100,+900)", tail.Off(), tail.Len())
	}

	// An anchor cluster in the MIDDLE gets both a head and a tail slice.
	mid := relation.NewRowSet(1000)
	for i := 400; i < 500; i++ {
		mid.Add(i)
	}
	views = Plan(tbl, mid, 4)
	if len(views) != 4 {
		t.Fatalf("middle cluster: %d views", len(views))
	}
	if views[0].Off() != 0 || views[0].Len() != 400 {
		t.Errorf("head slice [%d,+%d)", views[0].Off(), views[0].Len())
	}
	if last := views[3]; last.Off() != 500 || last.Len() != 500 {
		t.Errorf("tail slice [%d,+%d)", last.Off(), last.Len())
	}
	for _, v := range views[1:3] {
		if got := mid.CountRange(v.Off(), v.Off()+v.Len()); got != 50 {
			t.Errorf("middle searched slice [%d,+%d) holds %d anchors, want 50", v.Off(), v.Len(), got)
		}
	}
}

func TestPlanFallbacks(t *testing.T) {
	tbl := planTable(t, 64)
	// Nil/empty anchors fall back to even slicing.
	for _, anchor := range []*relation.RowSet{nil, relation.NewRowSet(64)} {
		views := Plan(tbl, anchor, 4)
		if len(views) != 4 {
			t.Fatalf("fallback views = %d", len(views))
		}
		for _, v := range views {
			if v.Len() != 16 {
				t.Fatalf("fallback shard len %d", v.Len())
			}
		}
	}
	// Fewer anchor rows than shards: searched slices clamp to the anchor
	// count (here 2), plus the anchor-free head and tail slices.
	anchor := relation.RowSetOf(64, 10, 40)
	views := Plan(tbl, anchor, 8)
	if len(views) != 4 {
		t.Fatalf("k clamped to anchor count: got %d views", len(views))
	}
	searched := 0
	for _, v := range views {
		if anchor.CountRange(v.Off(), v.Off()+v.Len()) > 0 {
			searched++
		}
	}
	if searched != 2 {
		t.Errorf("searched slices = %d, want 2 (one per anchor row)", searched)
	}
	// k <= 1 or empty table: one view.
	if got := len(Plan(tbl, anchor, 1)); got != 1 {
		t.Errorf("k=1: got %d views", got)
	}
	empty := planTable(t, 0)
	if got := len(Plan(empty, nil, 4)); got != 1 {
		t.Errorf("empty table: got %d views", got)
	}
}

func TestLocalTask(t *testing.T) {
	tbl := planTable(t, 100)
	full := &influence.Task{
		Table:  tbl,
		AggCol: 0,
		Lambda: 0.5,
		C:      0.2,
		Outliers: []influence.Group{
			{Key: "a", Rows: relation.RowSetOf(100, 5, 80), Direction: influence.TooHigh},
			{Key: "b", Rows: relation.RowSetOf(100, 90), Direction: influence.TooHigh},
		},
		HoldOuts: []influence.Group{
			{Key: "h0", Rows: relation.RowSetOf(100, 3, 40)},
			{Key: "h1", Rows: relation.RowSetOf(100, 95)},
		},
	}
	v := tbl.Window(0, 50)
	local, outMap, holdMap, ok := localTask(full, v)
	if !ok {
		t.Fatal("window with outlier rows reported not ok")
	}
	if len(local.Outliers) != 1 || local.Outliers[0].Key != "a" {
		t.Fatalf("local outliers = %+v", local.Outliers)
	}
	if !local.Outliers[0].Rows.Contains(5) || local.Outliers[0].Rows.Count() != 1 {
		t.Fatalf("local outlier rows = %v", local.Outliers[0].Rows)
	}
	if len(outMap) != 1 || outMap[0] != 0 {
		t.Fatalf("outMap = %v", outMap)
	}
	if len(local.HoldOuts) != 1 || local.HoldOuts[0].Key != "h0" || len(holdMap) != 1 || holdMap[0] != 0 {
		t.Fatalf("local holdouts = %+v map %v", local.HoldOuts, holdMap)
	}
	if local.Table.NumRows() != 50 {
		t.Fatalf("local universe = %d", local.Table.NumRows())
	}
	// A window without outlier rows is skipped.
	if _, _, _, ok := localTask(full, tbl.Window(6, 79)); ok {
		t.Fatal("outlier-free window reported ok")
	}
}

// coordSetup builds a full-table scorer/space over a synthetic dataset and
// a NAIVE factory.
func coordSetup(t testing.TB, cfg synth.Config, agg string) (*influence.Scorer, *predicate.Space, Factory) {
	t.Helper()
	ds := synth.Generate(cfg)
	task, space, err := eval.SynthTask(ds, agg, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(sc *influence.Scorer, sp *predicate.Space, domains map[int]predicate.Domain) (partition.Searcher, error) {
		return naive.NewSearcher(sc, sp, naive.Params{Bins: 6, TopK: DefaultTopPerShard, Domains: domains}), nil
	}
	return scorer, space, factory
}

// TestCoordinatorMatchesUnsharded: the sharded NAIVE search returns the
// same top predicate as the unsharded one, with an exact (full-table)
// score, for several shard counts and worker budgets.
func TestCoordinatorMatchesUnsharded(t *testing.T) {
	cfg := synth.Config{Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 7}
	scorer, space, factory := coordSetup(t, cfg, "sum")

	unsharded, err := factory(scorer, space, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := partition.RunSearch(context.Background(), 1, unsharded)
	if err != nil {
		t.Fatal(err)
	}
	baseTop, ok := partition.Top(base.Candidates)
	if !ok {
		t.Fatal("unsharded search found nothing")
	}
	baseScore := scorer.Influence(baseTop.Pred)

	for _, tc := range []struct{ shards, workers int }{{2, 1}, {4, 2}, {4, 8}} {
		t.Run(fmt.Sprintf("shards=%d/workers=%d", tc.shards, tc.workers), func(t *testing.T) {
			coord := NewCoordinator(scorer, space, factory, tc.shards, Params{GridBins: 6})
			if coord.NumShards() != tc.shards {
				t.Fatalf("planned %d shards", coord.NumShards())
			}
			out, err := partition.RunSearch(context.Background(), tc.workers, coord)
			if err != nil {
				t.Fatal(err)
			}
			top, ok := partition.Top(out.Candidates)
			if !ok {
				t.Fatal("sharded search found nothing")
			}
			// Shards enumerate the global clause grid, so the unsharded top
			// is rediscoverable verbatim: same predicate, same exact score.
			if top.Pred.Key() != baseTop.Pred.Key() {
				t.Errorf("sharded top %q != unsharded top %q", top.Pred, baseTop.Pred)
			}
			if top.Score < baseScore-1e-9 {
				t.Errorf("sharded top scores %.6f < unsharded %.6f", top.Score, baseScore)
			}
			// And its stored score is the exact one.
			if exact := scorer.Influence(top.Pred); top.Score != exact {
				t.Errorf("top score %.6f != exact %.6f", top.Score, exact)
			}
			if coord.Calls() == 0 {
				t.Error("shard-local scorer calls not observable")
			}
		})
	}
}

// TestCoordinatorPerShardBoards: every searched shard publishes tagged
// best-so-far into children of one board.
func TestCoordinatorPerShardBoards(t *testing.T) {
	cfg := synth.Config{Dims: 2, TuplesPerGroup: 200, Groups: 4, OutlierGroups: 2, Mu: 80, Seed: 3}
	scorer, space, factory := coordSetup(t, cfg, "sum")
	coord := NewCoordinator(scorer, space, factory, 3, Params{})

	board := partition.NewBoard()
	out, err := partition.RunSearchObserved(context.Background(), 2, board, coord)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	kids := board.Children()
	if len(kids) == 0 {
		t.Fatal("no per-shard boards")
	}
	published := 0
	for _, k := range kids {
		if len(k.Cands) > 0 {
			published++
		}
	}
	if published == 0 {
		t.Fatalf("no shard published best-so-far: %+v", kids)
	}
	if global, _ := board.Snapshot(); len(global) == 0 {
		t.Fatal("global board empty")
	}
}

// TestCoordinatorCancellation: one cancelled context stops every shard
// search and the outcome is flagged interrupted.
func TestCoordinatorCancellation(t *testing.T) {
	cfg := synth.Config{Dims: 3, TuplesPerGroup: 400, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 5}
	scorer, space, factory := coordSetup(t, cfg, "sum")
	coord := NewCoordinator(scorer, space, factory, 4, Params{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every shard must observe it promptly
	out, err := partition.RunSearch(ctx, 4, coord)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Interrupted {
		t.Fatal("cancelled sharded search not marked interrupted")
	}
}
