// Package shard fans ONE explanation search across horizontal slices of a
// table and merges the results — the paper's partition-then-merge shape
// (§7.3) applied to the data axis instead of the predicate axis.
//
// Three pieces cooperate:
//
//   - a planner (Plan) that cuts the table into contiguous zero-copy
//     relation.Views, group-aware: cut points follow the quantiles of the
//     flagged outlier provenance, so every shard's local search has outlier
//     tuples to work with and shards carry near-equal shares of the rows
//     the scorer actually scans;
//   - a coordinator (Coordinator, a partition.Searcher) that runs the
//     chosen partitioner per shard — each shard gets a scorer and predicate
//     space over ITS view only — on a split of one worker budget, under one
//     cancellation context, publishing per-shard best-so-far into tagged
//     children of one partition.Board;
//   - a combiner that maps shard-local candidates back to global row ids,
//     dedupes them by predicate clause set (views share the base table's
//     dictionaries, so predicates transfer verbatim), re-scores the
//     survivors exactly on the full table, and feeds internal/merge so
//     adjacent boxes found by different shards coalesce.
//
// Shard-local scores are estimates (a shard sees only its slice of every
// group, and hold-out groups wholly outside the window are invisible to
// it); the exact full-table re-score in the combiner is what the returned
// ranking rests on. This mirrors the paper's MERGER design — generate
// candidates on partitions, re-score and combine them globally — and the
// decomposable-aggregate-state reasoning of the lineage literature: per-
// shard aggregate states are built over subsets without ever rescanning
// the whole input.
package shard

import (
	"fmt"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Plan slices t into at most k contiguous zero-copy views, group-aware
// with respect to anchor — the union of the outlier groups' provenance:
//
//   - regions before the first and after the last anchor row are split off
//     into their own slices (at most two, budgeted out of k): they contain
//     no outlier provenance, so their local searches are skipped for free
//     while the final exact re-score still accounts for their rows;
//   - the anchored region in between is cut at anchor quantiles, so every
//     searched slice carries a near-equal share of the rows the shard
//     searches actually scan.
//
// For time-ordered tables whose flagged groups are contiguous runs — the
// common GROUP BY hour/day shape — this is what makes sharding pay: each
// shard's scorer sees only the flagged groups inside its window instead of
// every group's bitmap.
//
// With a nil or empty anchor the plan falls back to even row slicing. The
// returned views are disjoint, covering, and in row order; fewer than k
// come back when the anchor is too small to fill the budget.
func Plan(t *relation.Table, anchor *relation.RowSet, k int) []*relation.View {
	n := t.NumRows()
	if k < 1 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	if k == 1 || n == 0 {
		return []*relation.View{t.Window(0, n)}
	}
	m := 0
	if anchor != nil {
		m = anchor.Count()
	}
	if m == 0 {
		return t.Shards(k)
	}

	// The anchored region [first, last+1) and the slice budget around it.
	// Min/Max are O(1) on the compact provenance encodings — no full scan.
	first, last := anchor.Min(), anchor.Max()
	var bounds []int
	quant := k
	if first > 0 {
		quant--
	}
	if last+1 < n {
		quant--
	}
	if quant < 1 {
		// k is too small to afford both remainder slices; keep the tail
		// one (typically the big unflagged region) and fold the head in.
		quant = 1
		if first > 0 && last+1 < n && k < 3 {
			first = 0
		}
	}
	if first > 0 {
		bounds = append(bounds, first)
	}
	if quant > m {
		quant = m
	}
	// Cut before the anchor member of rank i·m/quant, i = 1..quant-1:
	// searched slice i then holds anchor ranks [i·m/quant, (i+1)·m/quant).
	// Ranks are strictly increasing row ids, so the bounds are strictly
	// increasing — every searched slice gets at least one anchor row.
	next := m / quant
	i := 1
	rank := 0
	anchor.ForEach(func(r int) {
		if i < quant && rank == next {
			bounds = append(bounds, r)
			i++
			next = i * m / quant
		}
		rank++
	})
	if last+1 < n {
		bounds = append(bounds, last+1)
	}
	return t.ShardsAt(bounds)
}

// localTask projects a full-table influence task onto one view: group
// provenance RowSets are sliced to the window and shifted to local ids,
// and groups with no rows inside the window are dropped — a shard only
// scores what it can see. The returned index maps recover each local
// group's position in the full task (outMap for outliers, holdMap for
// hold-outs). A shard whose window contains no outlier rows returns ok =
// false: it cannot generate candidates and should be skipped.
func localTask(full *influence.Task, v *relation.View) (t *influence.Task, outMap, holdMap []int, ok bool) {
	local := &influence.Task{
		Table:   v,
		Agg:     full.Agg,
		AggCol:  full.AggCol,
		Lambda:  full.Lambda,
		C:       full.C,
		Perturb: full.Perturb,
	}
	for gi, g := range full.Outliers {
		rows := v.LocalRows(g.Rows)
		if rows.IsEmpty() {
			continue
		}
		local.Outliers = append(local.Outliers, influence.Group{Key: g.Key, Rows: rows, Direction: g.Direction})
		outMap = append(outMap, gi)
	}
	if len(local.Outliers) == 0 {
		return nil, nil, nil, false
	}
	for gi, g := range full.HoldOuts {
		rows := v.LocalRows(g.Rows)
		if rows.IsEmpty() {
			continue
		}
		local.HoldOuts = append(local.HoldOuts, influence.Group{Key: g.Key, Rows: rows})
		holdMap = append(holdMap, gi)
	}
	return local, outMap, holdMap, true
}

// OutlierUnion returns the union of a task's outlier provenance — the
// planner's anchor.
func OutlierUnion(task *influence.Task) *relation.RowSet {
	u := relation.NewRowSet(task.Table.NumRows())
	for _, g := range task.Outliers {
		u.Or(g.Rows)
	}
	return u
}

// ShardTag names shard i in board children and progress snapshots.
func ShardTag(i int) string { return fmt.Sprintf("shard-%d", i) }
