package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/scorpiondb/scorpion/internal/estimate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Factory builds the shard-local searcher for one slice: it receives a
// scorer and predicate space scoped to that shard's view and returns the
// partitioner to run there. The top-level explain layer supplies a factory
// that builds the same algorithm (NAIVE/DT/MC, with the request's params)
// it would have run unsharded.
//
// domains carries the GLOBAL continuous-grid extents (the full table's
// outlier extent per space column): grid-based searchers (NAIVE, MC) must
// thread it into their params so every shard enumerates the identical
// clause grid the unsharded search would — the property that lets the
// combiner dedupe and bounding-box-merge shard candidates exactly. It is
// nil for the full-table fallback.
type Factory func(scorer *influence.Scorer, space *predicate.Space, domains map[int]predicate.Domain) (partition.Searcher, error)

// RemoteShard is everything a remote peer needs to reproduce one shard's
// local search: the window, the window-local influence task, the search
// attributes, and the pinned global domains. Index names the shard for
// tagging; Workers is the worker share this shard was granted.
type RemoteShard struct {
	Index   int
	View    *relation.View
	Task    *influence.Task
	Attrs   []string
	Domains map[int]predicate.Domain
	Workers int
}

// RemoteSearcher dispatches one shard search to a remote worker. It
// returns ok = false when the shard should run locally instead — whether
// because no peer is healthy, every attempt failed, or the dispatcher
// does not handle this shard. Errors are the dispatcher's to log; the
// coordinator's contract is only "an outcome, or run it yourself", so a
// degraded fleet answers correctly, just slower. A returned outcome must
// be complete (never partial): its candidates feed the combiner exactly
// as a local search's would.
type RemoteSearcher func(ctx context.Context, rs *RemoteShard) (*partition.Outcome, bool)

// DefaultTopPerShard is the default per-shard candidate contribution;
// searcher factories should make their shard searchers return at least
// this many candidates so the combiner has real recall to re-score.
const DefaultTopPerShard = 64

// Params tunes the coordinator's combine stage.
type Params struct {
	// TopPerShard caps how many candidates each shard contributes to the
	// global combine (default DefaultTopPerShard). Shard-local rankings
	// are window estimates — a shard without local hold-out rows ranks
	// unpenalized — so the contribution must run deeper than the final
	// top-k for the exact re-score to recover the true winner.
	TopPerShard int
	// MergeTop is how many exactly re-scored candidates feed the global
	// merge pass and the refine lattice (default 48); the rest still rank
	// in the result, they are just not grown or climbed further. The
	// combine stage's exact-scoring budget is bounded by TopPerShard (every
	// deduped shard candidate is re-scored once); MergeTop bounds the
	// merge/refine work on top of that.
	MergeTop int
	// GridBins is the continuous bin count of the shard searchers' clause
	// grid (naive/mc Params.Bins). The combiner's refine pass uses it to
	// rebuild the full bin-edge lattice over the global domains, so a
	// hill-climb can reach interior grid edges that no surviving candidate
	// happens to carry. 0 leaves the lattice candidate-derived only (the
	// DT path, whose split points are not on a grid).
	GridBins int
	// Merge tunes the global merge pass. The shard-local statistics behind
	// the §6.3 cached-tuple approximation are window estimates, so the
	// combine merge always scores exactly; UseApproximation is ignored.
	Merge merge.Params
	// Remote, when non-nil, is offered every shard search before the local
	// path runs it: a dispatcher that ships the shard to a worker fleet.
	// The coordinator's post-processing (penalty rerank, TopPerShard cut,
	// global id map-back) and the combiner are identical for both paths,
	// so remote and local shard searches produce identical final results.
	Remote RemoteSearcher
	// Penalty, when non-nil, is a full-table hold-out sample sketch shipped
	// to every shard: before the TopPerShard cut, each shard's candidates
	// are re-ranked by their local score minus the sketch's estimate of the
	// GLOBAL hold-out penalty they would pay. Hold-out-blind shard rankings
	// otherwise favour the widest boxes and can push the λ-optimal
	// candidate below the cut; the combiner's exact re-score still settles
	// final scores, so the sketch only shapes recall, never results.
	Penalty *estimate.Sketch
}

func (p Params) withDefaults() Params {
	if p.TopPerShard <= 0 {
		p.TopPerShard = DefaultTopPerShard
	}
	if p.MergeTop <= 0 {
		p.MergeTop = 48
	}
	p.Merge.UseApproximation = false
	if p.Merge.MaxRounds <= 0 {
		// Unsharded NAIVE/MC never grow a candidate more than a few steps
		// past a shard boundary; unbounded rounds would let the combine
		// stage outspend the searches it combines.
		p.Merge.MaxRounds = 16
	}
	return p
}

// Coordinator fans one search across horizontal table shards behind the
// partition.Searcher interface, so ExplainContext drives a sharded search
// through the exact same spine (worker pool, cancellation, board) as an
// unsharded one.
type Coordinator struct {
	scorer  *influence.Scorer // full-table scorer: exact re-score + merge
	space   *predicate.Space  // full-table space: global merge adjacency
	factory Factory
	params  Params
	views   []*relation.View
	// domains is the global continuous clause-grid extent per space column
	// (outlier-row min/max on the full table) handed to every shard's
	// factory.
	domains map[int]predicate.Domain

	mu     sync.Mutex
	locals []*influence.Scorer // live shard scorers, for Calls()
}

// NewCoordinator plans a sharded search over the full-table scorer's task:
// the table is sliced into (at most) shards group-aware views. The caller
// should fall back to an unsharded search when NumShards() < 2.
func NewCoordinator(scorer *influence.Scorer, space *predicate.Space, factory Factory, shards int, params Params) *Coordinator {
	task := scorer.Task()
	anchor := OutlierUnion(task)
	views := Plan(task.Table.Data(), anchor, shards)
	domains := make(map[int]predicate.Domain, len(space.Columns()))
	for _, col := range space.Columns() {
		if space.Kind(col) != relation.Continuous {
			continue
		}
		if st := task.Table.FloatStats(col, anchor); st.Count > 0 {
			domains[col] = predicate.Domain{Lo: st.Min, Hi: st.Max}
		}
	}
	return &Coordinator{
		scorer:  scorer,
		space:   space,
		factory: factory,
		params:  params.withDefaults(),
		views:   views,
		domains: domains,
	}
}

// NumShards reports how many slices the plan produced.
func (c *Coordinator) NumShards() int { return len(c.views) }

// Name identifies the composite searcher.
func (c *Coordinator) Name() string { return "sharded" }

// Calls sums the scorer calls of every shard-local scorer started so far.
// It is safe to call while the search runs (the progress monitor does), and
// complements the full-table scorer's own counter, which only sees the
// combine stage.
func (c *Coordinator) Calls() int64 {
	c.mu.Lock()
	locals := append([]*influence.Scorer(nil), c.locals...)
	c.mu.Unlock()
	var n int64
	for _, s := range locals {
		n += s.Calls()
	}
	return n
}

// shardResult is one shard search reduced to the combiner's input.
type shardResult struct {
	cands       []partition.Candidate
	work        int64
	pruned      int64
	escalated   int64
	interrupted bool
	err         error
}

// Search runs the shard searches on a split of the pool's worker budget —
// at most Workers() shard searches in flight, each with an equal share of
// the budget — then combines their candidates globally. All shard pools
// derive from the coordinator pool's context, so cancelling the search
// cancels every shard, and each shard publishes into a tagged child of the
// pool's board.
func (c *Coordinator) Search(pool *partition.Pool) (*partition.Outcome, error) {
	k := len(c.views)
	slots := pool.Workers()
	if slots > k {
		slots = k
	}
	if slots < 1 {
		slots = 1
	}
	// Pre-create the per-shard boards in shard order: children are listed
	// in creation order, so observers see Progress.Shards deterministically
	// ordered regardless of goroutine scheduling.
	if board := pool.Board(); board != nil {
		for i := range c.views {
			board.Child(ShardTag(i))
		}
	}

	// Fixed runner slots pulling shard indices: runner j owns a static
	// share of the worker budget (the first Workers%slots runners take the
	// remainder), so the concurrently active worker count is exactly the
	// pool's budget — never over it, and no granted worker idles for the
	// whole stage.
	results := make([]shardResult, k)
	share := pool.Workers() / slots
	rem := pool.Workers() % slots
	next := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < slots; j++ {
		workers := share
		if j < rem {
			workers++
		}
		if workers < 1 {
			workers = 1
		}
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for i := range next {
				if pool.Cancelled() {
					results[i].interrupted = true
					continue
				}
				results[i] = c.searchShard(i, pool, workers)
			}
		}(workers)
	}
	for i := range c.views {
		next <- i
	}
	close(next)
	wg.Wait()

	var all []partition.Candidate
	var work, pruned, escalated int64
	interrupted := false
	searched := 0
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, r.err)
		}
		all = append(all, r.cands...)
		work += r.work
		pruned += r.pruned
		escalated += r.escalated
		interrupted = interrupted || r.interrupted
		if r.cands != nil || r.work > 0 {
			searched++
		}
	}
	if searched == 0 && !interrupted {
		// Defensive: the planner anchors on outlier rows, so at least one
		// shard always has outliers — but if every shard were skipped, run
		// the search unsharded rather than answering nothing.
		inner, err := c.factory(c.scorer, c.space, nil)
		if err != nil {
			return nil, err
		}
		return inner.Search(pool)
	}

	cands := c.combine(pool, all)
	return &partition.Outcome{
		Candidates:  cands,
		Work:        work,
		Pruned:      pruned,
		Escalated:   escalated,
		Interrupted: interrupted || pool.Cancelled(),
	}, nil
}

// searchShard builds the shard-local task, scorer, space and searcher for
// view i and runs it with the given worker share.
func (c *Coordinator) searchShard(i int, pool *partition.Pool, workers int) shardResult {
	v := c.views[i]
	task, outMap, _, ok := localTask(c.scorer.Task(), v)
	if !ok {
		return shardResult{} // no outlier rows in this window: nothing to search
	}
	if c.params.Remote != nil {
		rs := &RemoteShard{Index: i, View: v, Task: task, Attrs: c.space.AttrNames(), Domains: c.domains, Workers: workers}
		if outcome, ok := c.params.Remote(pool.Context(), rs); ok {
			span := obs.SpanFrom(pool.Context()).Child("shard.search")
			span.SetAttr("shard", ShardTag(i))
			span.SetAttr("remote", true)
			span.SetAttr("work", outcome.Work)
			span.SetAttr("candidates", len(outcome.Candidates))
			span.End()
			// Remote candidates still publish into the shard's board child so
			// progress snapshots cover a mixed local/remote fleet.
			if board := pool.Board(); board != nil {
				board.Child(ShardTag(i)).Publish(outcome.Candidates)
			}
			return c.finishShard(v, outMap, outcome)
		}
		// Dispatch declined or failed: fall through to the local search.
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		return shardResult{err: err}
	}
	c.mu.Lock()
	c.locals = append(c.locals, scorer)
	c.mu.Unlock()
	space, err := predicate.NewSpace(v, c.space.AttrNames(), nil)
	if err != nil {
		return shardResult{err: err}
	}
	searcher, err := c.factory(scorer, space, c.domains)
	if err != nil {
		return shardResult{err: err}
	}
	span := obs.SpanFrom(pool.Context()).Child("shard.search")
	span.SetAttr("shard", ShardTag(i))
	span.SetAttr("rows", v.NumRows())
	span.SetAttr("workers", workers)
	shardPool := partition.NewPool(obs.ContextWithSpan(pool.Context(), span), workers).WithBoard(pool.Board().Child(ShardTag(i)))
	outcome, err := searcher.Search(shardPool)
	if err != nil {
		span.End()
		return shardResult{err: err}
	}
	span.SetAttr("work", outcome.Work)
	span.SetAttr("candidates", len(outcome.Candidates))
	span.End()
	return c.finishShard(v, outMap, outcome)
}

// finishShard applies the coordinator-side post-processing every shard
// outcome gets, local or remote: the penalty-aware rerank, the
// TopPerShard cut, and the map back to global row ids.
func (c *Coordinator) finishShard(v *relation.View, outMap []int, outcome *partition.Outcome) shardResult {
	cands := outcome.Candidates
	if sk := c.params.Penalty; sk != nil && len(cands) > c.params.TopPerShard {
		// Penalty-aware cut: shard predicates transfer verbatim to the base
		// table (shared dictionaries, raw continuous values), so the
		// full-table sketch can estimate each candidate's global hold-out
		// penalty before the contribution is truncated. Stable sort keeps
		// the shard's own order among penalty ties.
		lambda := c.scorer.Task().Lambda
		adj := make([]float64, len(cands))
		for j := range cands {
			adj[j] = cands[j].Score - (1-lambda)*sk.Penalty(cands[j].Pred)
		}
		order := make([]int, len(cands))
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool { return adj[order[a]] > adj[order[b]] })
		reranked := make([]partition.Candidate, len(cands))
		for j, o := range order {
			reranked[j] = cands[o]
		}
		cands = reranked
	}
	if len(cands) > c.params.TopPerShard {
		cands = cands[:c.params.TopPerShard]
	}
	mapped := make([]partition.Candidate, len(cands))
	for j, cand := range cands {
		mapped[j] = mapBack(v, cand, outMap, len(c.scorer.Task().Outliers))
	}
	return shardResult{
		cands:       mapped,
		work:        outcome.Work,
		pruned:      outcome.Pruned,
		escalated:   outcome.Escalated,
		interrupted: outcome.Interrupted,
	}
}

// mapBack rewrites a shard-local candidate in the base table's terms. The
// predicate itself transfers verbatim — views share the base dictionaries,
// so discrete codes mean the same thing, and continuous clauses carry raw
// values — while cached row ids shift by the view's offset and per-group
// stats re-index onto the full task's outlier arity. GroupCards and
// MeanInfluences stay window-local measurements; the combiner re-scores
// exactly, so they are provenance, not inputs.
func mapBack(v *relation.View, c partition.Candidate, outMap []int, nOut int) partition.Candidate {
	out := c
	if c.GroupCards != nil && len(c.GroupCards) == len(outMap) {
		cards := make([]float64, nOut)
		for j, gi := range outMap {
			cards[gi] = c.GroupCards[j]
		}
		out.GroupCards = cards
	}
	if c.CachedRows != nil && len(c.CachedRows) == len(outMap) {
		rows := make([]int, nOut)
		for gi := range rows {
			rows[gi] = -1
		}
		for j, gi := range outMap {
			if r := c.CachedRows[j]; r >= 0 {
				rows[gi] = v.ToGlobal(r)
			}
		}
		out.CachedRows = rows
	}
	if c.MeanInfluences != nil && len(c.MeanInfluences) == len(outMap) {
		means := make([]float64, nOut)
		for j, gi := range outMap {
			means[gi] = c.MeanInfluences[j]
		}
		out.MeanInfluences = means
	}
	return out
}

// combine dedupes the shards' candidates by predicate clause set, re-scores
// the survivors exactly on the full table (in parallel over the pool), and
// grows the strongest through a global merge pass so adjacent boxes found
// by different shards coalesce into the predicate an unsharded search
// would have scored whole.
func (c *Coordinator) combine(pool *partition.Pool, all []partition.Candidate) []partition.Candidate {
	if len(all) == 0 {
		return nil
	}
	span := obs.SpanFrom(pool.Context()).Child("combine")
	span.SetAttr("in", len(all))
	defer span.End()
	// Dedupe on shard-local estimates first so the exact pass scores each
	// clause set once; shard order makes the tie-breaks deterministic.
	partition.SortByScore(all)
	all = partition.Dedupe(all)

	lambda := c.scorer.Task().Lambda
	_ = pool.ForEach(len(all), func(i int) {
		outMean, holdPen := c.scorer.Parts(all[i].Pred)
		all[i].Score = lambda*outMean - (1-lambda)*holdPen
		all[i].HoldPenalty = holdPen
		all[i].InfluencesHoldOut = holdPen > 0
	})
	if pool.Cancelled() {
		// Partially re-scored: the list mixes inflated shard estimates
		// with exact scores, so neither rank nor publish it — the board
		// keeps its last consistent best, and the caller's final exact
		// re-score (rescoreExact on the partial Outcome) produces the
		// trustworthy ranking.
		return all
	}
	partition.SortByScore(all)
	pool.PublishBest(all)

	head := all
	var tail []partition.Candidate
	if len(all) > c.params.MergeTop {
		head, tail = all[:c.params.MergeTop], all[c.params.MergeTop:]
	}
	merged := merge.New(c.scorer, c.space, c.params.Merge).WithPool(pool).Merge(head)
	out := partition.Dedupe(append(merged, tail...))
	partition.SortByScore(out)
	rspan := span.Child("refine")
	rspan.SetAttr("in", len(out))
	out = c.refine(pool, out)
	rspan.End()
	span.SetAttr("out", len(out))
	pool.PublishBest(out)
	return out
}

// refineTop is how many leading candidates the combiner refines.
const refineTop = 4

// refineMaxSteps bounds one candidate's hill-climb.
const refineMaxSteps = 16

// maxLatticePerCol bounds the refine lattice per column: at most this many
// lo (and hi) values are climbed over, so the per-step move count — and
// with it the combine stage's exact-scoring budget — stays bounded even
// when every candidate carries distinct bounds (the DT path).
const maxLatticePerCol = 24

// thinFloats evenly downsamples a sorted slice to at most max values,
// keeping both extremes.
func thinFloats(s []float64, max int) []float64 {
	if len(s) <= max {
		return s
	}
	out := make([]float64, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, s[i*(len(s)-1)/(max-1)])
	}
	return out
}

// thinHis is thinFloats for hi bounds.
func thinHis(s []hiBound, max int) []hiBound {
	if len(s) <= max {
		return s
	}
	out := make([]hiBound, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, s[i*(len(s)-1)/(max-1)])
	}
	return out
}

// refine hill-climbs the top candidates along the clause-boundary lattice
// of the whole candidate pool, under the exact full-table objective. The
// merger can only GROW boxes, but shard-local rankings are hold-out-blind
// (a shard whose window holds no hold-out rows ranks by raw outlier
// influence), so the strongest shard candidates tend to be too WIDE: the
// λ-optimal box is often a sub-range that no shard promoted. Because every
// shard enumerates the same global grid, the pool's clause boundaries ARE
// that grid — stepping a candidate's bounds to neighboring observed
// boundaries and keeping exact improvements recovers the unsharded
// winner without re-enumerating anything. Scores stay exact throughout
// (the full scorer memoizes, so revisited predicates are free).
func (c *Coordinator) refine(pool *partition.Pool, cands []partition.Candidate) []partition.Candidate {
	if len(cands) < 2 {
		return cands
	}
	// Collect the observed boundary lattice per continuous column — from
	// the leading candidates only, and thinned below: on the grid paths
	// every candidate shares ~Bins boundary values, but DT split points
	// are all distinct, and an unbounded lattice would turn the climb into
	// the very full-table scan sharding avoids.
	los := make(map[int][]float64)
	his := make(map[int][]hiBound)
	latticeFrom := cands
	if len(latticeFrom) > c.params.MergeTop {
		latticeFrom = latticeFrom[:c.params.MergeTop]
	}
	for _, cand := range latticeFrom {
		for _, cl := range cand.Pred.Clauses() {
			if cl.Kind != relation.Continuous {
				continue
			}
			los[cl.Col] = insertSorted(los[cl.Col], cl.Lo)
			his[cl.Col] = insertHi(his[cl.Col], hiBound{cl.Hi, cl.HiInc})
		}
	}
	// Seed the lattice with the shard searchers' own grid over the global
	// domains (or at least the domain extents): greedy shard searches hand
	// over only the bounds they merged TO, so without this a climb could
	// never reach an interior bin edge no candidate happens to carry.
	for col, d := range c.domains {
		los[col] = insertSorted(los[col], d.Lo)
		his[col] = insertHi(his[col], hiBound{d.Hi, true})
		if bins := c.params.GridBins; bins > 1 && d.Hi > d.Lo {
			width := (d.Hi - d.Lo) / float64(bins)
			for i := 1; i < bins; i++ {
				edge := d.Lo + float64(i)*width
				los[col] = insertSorted(los[col], edge)
				his[col] = insertHi(his[col], hiBound{edge, false})
			}
		}
	}
	// Thin over-dense lattices (the DT path's distinct split points) to a
	// bounded number of evenly spaced values; the extremes always stay.
	for col := range los {
		los[col] = thinFloats(los[col], maxLatticePerCol)
	}
	for col := range his {
		his[col] = thinHis(his[col], maxLatticePerCol)
	}
	lambda := c.scorer.Task().Lambda
	exact := func(p predicate.Predicate) float64 {
		return c.scorer.Influence(p)
	}
	top := refineTop
	if top > len(cands) {
		top = len(cands)
	}
	var refined []partition.Candidate
	for i := 0; i < top && !pool.Cancelled(); i++ {
		cur := cands[i]
		curScore := cur.Score
		for step := 0; step < refineMaxSteps; step++ {
			best := curScore
			var bestPred predicate.Predicate
			improved := false
			for _, next := range boundaryMoves(cur.Pred, los, his) {
				if s := exact(next); s > best {
					best, bestPred, improved = s, next, true
				}
			}
			if !improved {
				break
			}
			cur = partition.Candidate{Pred: bestPred, Score: best}
			curScore = best
		}
		if curScore > cands[i].Score {
			outMean, holdPen := c.scorer.Parts(cur.Pred)
			refined = append(refined, partition.Candidate{
				Pred:              cur.Pred,
				Score:             lambda*outMean - (1-lambda)*holdPen,
				HoldPenalty:       holdPen,
				InfluencesHoldOut: holdPen > 0,
			})
		}
	}
	if len(refined) == 0 {
		return cands
	}
	out := partition.Dedupe(append(refined, cands...))
	partition.SortByScore(out)
	return out
}

// hiBound is an upper clause bound with its inclusivity.
type hiBound struct {
	v   float64
	inc bool
}

// boundaryMoves yields every single-bound variant of p on the observed
// lattice: each continuous clause's Lo replaced by each other observed Lo,
// and its Hi by each other observed bound. Trying the whole lattice (not
// just adjacent steps) lets the climb jump across score valleys — a
// single-bin step off a too-wide box often dips before the λ-optimal edge;
// the exact scorer's memo cache makes revisits free.
func boundaryMoves(p predicate.Predicate, los map[int][]float64, his map[int][]hiBound) []predicate.Predicate {
	var out []predicate.Predicate
	clauses := p.Clauses()
	for ci, cl := range clauses {
		if cl.Kind != relation.Continuous {
			continue
		}
		emit := func(nc predicate.Clause) {
			if nc.Lo > nc.Hi || (nc.Lo == nc.Hi && !nc.HiInc) {
				return
			}
			next := make([]predicate.Clause, len(clauses))
			copy(next, clauses)
			next[ci] = nc
			if np, err := predicate.New(next...); err == nil {
				out = append(out, np)
			}
		}
		for _, lo := range los[cl.Col] {
			if lo == cl.Lo {
				continue
			}
			nc := cl
			nc.Lo = lo
			emit(nc)
		}
		for _, h := range his[cl.Col] {
			if h.v == cl.Hi && h.inc == cl.HiInc {
				continue
			}
			nc := cl
			nc.Hi, nc.HiInc = h.v, h.inc
			emit(nc)
		}
	}
	return out
}

// insertSorted inserts v into a sorted slice without duplicates.
func insertSorted(s []float64, v float64) []float64 {
	i := sort.SearchFloat64s(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertHi inserts a hi bound into a slice sorted by (value, inclusivity)
// without duplicates.
func insertHi(s []hiBound, b hiBound) []hiBound {
	i := sort.Search(len(s), func(i int) bool {
		if s[i].v != b.v {
			return s[i].v >= b.v
		}
		return s[i].inc || !b.inc // exclusive sorts before inclusive
	})
	if i < len(s) && s[i] == b {
		return s
	}
	s = append(s, hiBound{})
	copy(s[i+1:], s[i:])
	s[i] = b
	return s
}
