// Package sample implements the DT partitioner's sampling machinery
// (§6.1.2 of the paper): the initial uniform sampling rate that catches an
// influential cluster with high probability, and the influence-weighted
// stratified rates used when a partition splits.
package sample

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// GroupSeed derives a deterministic sampling seed for one input group of one
// table generation. The hash (FNV-1a, fixed basis) is stable across processes
// and runs — unlike maphash — so two executions of the same approximate
// request draw identical samples and return identical answers, while an
// append (a new generation) reseeds every group. gen should identify the
// table state (the catalog generation, or the row count as a proxy); key is
// the group's group-by key.
func GroupSeed(gen int64, key string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(gen))
	h.Write(buf[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// InitialRate returns the smallest sampling rate sr such that a uniform
// sample of sr·n tuples contains at least one member of an influential
// cluster of fractional size eps with probability ≥ conf:
//
//	1 − (1−eps)^(sr·n) ≥ conf  ⇒  sr ≥ ln(1−conf) / (n·ln(1−eps))
//
// The result is clamped to (0, 1]. Degenerate inputs (eps ≤ 0, eps ≥ 1,
// conf ≤ 0, conf ≥ 1, n ≤ 0) fall back to rate 1.
func InitialRate(n int, eps, conf float64) float64 {
	if n <= 0 || eps <= 0 || eps >= 1 || conf <= 0 || conf >= 1 {
		return 1
	}
	sr := math.Log(1-conf) / (float64(n) * math.Log(1-eps))
	if sr >= 1 {
		return 1
	}
	if sr <= 0 {
		return 1
	}
	return sr
}

// Uniform draws a Bernoulli(rate) sample of set using rng. Rates ≥ 1 return
// a clone of the whole set. The draw is deterministic for a fixed rng state.
func Uniform(rng *rand.Rand, set *relation.RowSet, rate float64) *relation.RowSet {
	if rate >= 1 {
		return set.Clone()
	}
	out := relation.NewRowSet(set.Universe())
	set.ForEach(func(r int) {
		if rng.Float64() < rate {
			out.Add(r)
		}
	})
	return out
}

// SplitRates computes the §6.1.2 stratified sampling rates for the two
// children of a split. infLeft and infRight are the summed absolute sample
// influences falling into each child; sampleSize is |S|; leftSize and
// rightSize are the (estimated) child populations |D1|, |D2|:
//
//	rate_i = inf_i / (inf_1 + inf_2) · |S| / |D_i|
//
// When both influence masses are zero the split falls back to proportional
// rates. Rates are clamped to [minRate, 1].
func SplitRates(infLeft, infRight float64, sampleSize, leftSize, rightSize int, minRate float64) (float64, float64) {
	infLeft, infRight = math.Abs(infLeft), math.Abs(infRight)
	total := infLeft + infRight
	wl, wr := 0.5, 0.5
	if total > 0 {
		wl, wr = infLeft/total, infRight/total
	}
	rate := func(w float64, size int) float64 {
		if size <= 0 {
			return 1
		}
		r := w * float64(sampleSize) / float64(size)
		if r > 1 {
			return 1
		}
		if r < minRate {
			return minRate
		}
		return r
	}
	return rate(wl, leftSize), rate(wr, rightSize)
}
