package sample

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func TestInitialRateFormula(t *testing.T) {
	// 1 − (1−eps)^(sr·n) ≥ conf must hold at the returned rate.
	for _, tc := range []struct {
		n    int
		eps  float64
		conf float64
	}{
		{10000, 0.05, 0.95},
		{2000, 0.01, 0.95},
		{100, 0.25, 0.99},
	} {
		sr := InitialRate(tc.n, tc.eps, tc.conf)
		got := 1 - math.Pow(1-tc.eps, sr*float64(tc.n))
		if got < tc.conf-1e-9 {
			t.Errorf("InitialRate(%d, %v, %v) = %v gives confidence %v < %v",
				tc.n, tc.eps, tc.conf, sr, got, tc.conf)
		}
		// Slightly smaller rates must not reach the confidence (minimality),
		// unless the rate is already 1.
		if sr < 1 {
			lower := 1 - math.Pow(1-tc.eps, 0.9*sr*float64(tc.n))
			if lower >= tc.conf {
				t.Errorf("rate %v not minimal for n=%d", sr, tc.n)
			}
		}
	}
}

func TestInitialRateSmallDatasets(t *testing.T) {
	// Small n forces full sampling.
	if sr := InitialRate(10, 0.05, 0.95); sr != 1 {
		t.Errorf("InitialRate(10) = %v, want 1", sr)
	}
}

func TestInitialRateDegenerate(t *testing.T) {
	for _, tc := range []struct {
		n    int
		eps  float64
		conf float64
	}{
		{0, 0.05, 0.95},
		{-5, 0.05, 0.95},
		{100, 0, 0.95},
		{100, 1, 0.95},
		{100, 0.05, 0},
		{100, 0.05, 1},
	} {
		if sr := InitialRate(tc.n, tc.eps, tc.conf); sr != 1 {
			t.Errorf("InitialRate(%v) = %v, want fallback 1", tc, sr)
		}
	}
}

func TestUniformSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := relation.FullRowSet(10000)
	s := Uniform(rng, set, 0.1)
	n := s.Count()
	if n < 800 || n > 1200 {
		t.Errorf("sample size %d far from expected 1000", n)
	}
	if !s.SubsetOf(set) {
		t.Error("sample not a subset")
	}
	// Rate 1 returns everything.
	if Uniform(rng, set, 1).Count() != 10000 {
		t.Error("rate-1 sample incomplete")
	}
}

func TestUniformDeterministic(t *testing.T) {
	set := relation.FullRowSet(1000)
	a := Uniform(rand.New(rand.NewSource(42)), set, 0.3)
	b := Uniform(rand.New(rand.NewSource(42)), set, 0.3)
	if !a.Equal(b) {
		t.Error("same seed produced different samples")
	}
}

func TestSplitRatesProportions(t *testing.T) {
	// All influence mass on the left → left gets the whole budget.
	l, r := SplitRates(10, 0, 100, 500, 500, 0)
	if l <= r {
		t.Errorf("left rate %v should exceed right %v", l, r)
	}
	if l != math.Min(1, 100.0/500) {
		t.Errorf("left rate = %v", l)
	}
	if r != 0 {
		t.Errorf("right rate = %v, want 0 (no influence, no min)", r)
	}
}

func TestSplitRatesFallbackProportional(t *testing.T) {
	l, r := SplitRates(0, 0, 100, 400, 100, 0)
	// Zero influence → 50/50 weights: l = 0.5·100/400, r = 0.5·100/100.
	if math.Abs(l-0.125) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Errorf("rates = %v, %v", l, r)
	}
}

func TestSplitRatesClamping(t *testing.T) {
	l, r := SplitRates(5, 5, 1000, 10, 10, 0)
	if l != 1 || r != 1 {
		t.Errorf("rates should clamp to 1: %v, %v", l, r)
	}
	l, r = SplitRates(1, 1000, 100, 1000, 1000, 0.05)
	if l < 0.05 {
		t.Errorf("left rate %v below minRate", l)
	}
	_ = r
	// Empty side returns 1 (nothing to sample anyway).
	l, _ = SplitRates(1, 1, 10, 0, 10, 0)
	if l != 1 {
		t.Errorf("empty side rate = %v, want 1", l)
	}
	// Negative influences are treated by magnitude.
	l, r = SplitRates(-10, 0, 100, 500, 500, 0)
	if l <= r {
		t.Errorf("negative mass ignored: %v vs %v", l, r)
	}
}

func TestGroupSeedDeterministicAndDistinct(t *testing.T) {
	// Same (generation, key) → same seed, every time: this is what makes two
	// runs of the same approximate request draw identical samples. The seed
	// is a fixed-basis FNV-1a hash, so these values are also stable across
	// processes and builds — if this test starts failing, run-to-run answer
	// equality of anytime searches silently broke with it.
	if a, b := GroupSeed(1000, "12PM"), GroupSeed(1000, "12PM"); a != b {
		t.Fatalf("GroupSeed not deterministic: %d vs %d", a, b)
	}
	// Different keys and different generations must disperse.
	seen := map[int64]string{}
	for _, gen := range []int64{100, 101, 5000} {
		for _, key := range []string{"11AM", "12PM", "1PM", "g\x1fsub"} {
			s := GroupSeed(gen, key)
			at := fmt.Sprintf("gen=%d key=%q", gen, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, at)
			}
			seen[s] = at
		}
	}
	// A generation bump (an append) must reseed even for the same key.
	if GroupSeed(100, "12PM") == GroupSeed(101, "12PM") {
		t.Fatal("generation bump did not change the seed")
	}
}

func TestGroupSeedShuffleEquality(t *testing.T) {
	// The regression the seed exists to prevent: two shuffles of the same
	// rows under the same (gen, key) are identical; a new generation is not.
	shuffle := func(gen int64, key string) []int {
		rows := make([]int, 200)
		for i := range rows {
			rows[i] = i
		}
		rng := rand.New(rand.NewSource(GroupSeed(gen, key)))
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		return rows
	}
	a, b := shuffle(7, "g1"), shuffle(7, "g1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run shuffle mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := shuffle(8, "g1")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("append generation produced an identical shuffle")
	}
}
