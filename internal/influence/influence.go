// Package influence implements Scorpion's notion of predicate influence
// (§3.2 of the paper) and the Scorer component (§4.1).
//
// For a single outlier result o with error vector v_o and a predicate p:
//
//	Δagg(o, p)     = agg(g_o) − agg(g_o − p(g_o))
//	inf(o, p, v_o) = (Δagg(o, p) / |p(g_o)|^c) · v_o
//
// and for outlier set O, hold-out set H with trade-off λ:
//
//	inf(O, H, p, V) = λ · (1/|O|) Σ_o inf(o, p, v_o)
//	                − (1−λ) · max_h |inf(h, p)|
//
// The exponent c is the §7 knob trading result change against predicate
// selectivity (c=1 recovers the basic §3.2 definition).
//
// The Scorer offers two execution paths. For incrementally removable
// aggregates (§5.1) it caches state(g) per input group and computes updated
// results by removing the state of the matched tuples — cost proportional to
// |p(g)|. For black-box aggregates it recomputes agg(g − p(g)) — cost
// proportional to |g|.
package influence

import (
	"fmt"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Direction encodes a one-dimensional error vector (§3.1): whether the user
// judged an outlier result too high (+1) or too low (−1).
type Direction float64

const (
	// TooHigh means the outlier's value should decrease.
	TooHigh Direction = 1
	// TooLow means the outlier's value should increase.
	TooLow Direction = -1
)

// Group is one flagged query result: its provenance rows and, for outliers,
// the user's error vector.
type Group struct {
	// Key identifies the result row (its group-by key).
	Key string
	// Rows is the input group g of the result.
	Rows *relation.RowSet
	// Direction is the error vector for outliers; ignored for hold-outs.
	Direction Direction
}

// Task bundles everything the Scorer needs: the data, the aggregate, the
// flagged result groups, and the user knobs.
type Task struct {
	// Table is the relation the task's row ids index: a whole table, or a
	// relation.View for a shard-local task whose scorer must see only its
	// window's rows. Group RowSets use the relation's (local) id space.
	Table relation.Relation
	// Agg is the aggregate under explanation.
	Agg aggregate.Func
	// AggCol is the aggregate attribute column index, or -1 for count(*).
	AggCol int
	// Outliers and HoldOuts carry the flagged result groups.
	Outliers []Group
	HoldOuts []Group
	// Lambda trades outlier influence against hold-out stability (§3.2).
	Lambda float64
	// C is the §7 selectivity knob; 1 recovers the basic definition.
	C float64
	// Perturb switches Δ from tuple deletion to value perturbation — the
	// alternative formulation the paper's §3.2 footnote mentions but does
	// not explore. When non-nil, Δagg(o, p) = agg(g) − agg(g with every
	// matched tuple's aggregate value replaced by *Perturb), answering
	// "how would the result change had these readings been <value>?". The
	// matched-tuple count still feeds the c denominator.
	Perturb *float64
}

// Validate checks the task's invariants.
func (t *Task) Validate() error {
	if t.Table == nil {
		return fmt.Errorf("influence: task has no table")
	}
	if t.Agg == nil {
		return fmt.Errorf("influence: task has no aggregate")
	}
	if len(t.Outliers) == 0 {
		return fmt.Errorf("influence: task has no outlier results")
	}
	if t.Lambda < 0 || t.Lambda > 1 {
		return fmt.Errorf("influence: lambda %v outside [0,1]", t.Lambda)
	}
	if t.C < 0 {
		return fmt.Errorf("influence: c %v must be non-negative", t.C)
	}
	if t.AggCol >= 0 && t.Table.Schema().Column(t.AggCol).Kind != relation.Continuous {
		return fmt.Errorf("influence: aggregate column must be continuous")
	}
	for _, g := range t.Outliers {
		if g.Direction != TooHigh && g.Direction != TooLow {
			return fmt.Errorf("influence: outlier %q needs an error vector of ±1", g.Key)
		}
	}
	return nil
}

// Value returns the aggregate attribute of row r. For count(*) (AggCol
// < 0) every tuple contributes 1 to the aggregate, so 1 is returned —
// callers such as the algorithm chooser can then run data-dependent
// property checks (§5.3's check(D)) on real per-tuple values instead of an
// empty projection.
func (t *Task) Value(r int) float64 {
	if t.AggCol < 0 {
		return 1
	}
	return t.Table.Floats(t.AggCol)[r]
}

// groupValues projects the aggregate attribute over a group.
func (t *Task) groupValues(g Group) []float64 {
	out := make([]float64, 0, g.Rows.Count())
	g.Rows.ForEach(func(r int) { out = append(out, t.Value(r)) })
	return out
}

// Scorer evaluates predicate influence. It caches per-group aggregate state
// (for incrementally removable aggregates) and memoizes predicate scores.
//
// A Scorer is safe for concurrent use: the per-group states are immutable
// after construction, the memoized score cache is sharded and synchronized,
// and the Calls counter is atomic — so every worker of a parallel search
// can share one Scorer (and one memo cache) instead of rebuilding per-group
// state per goroutine.
type Scorer struct {
	task *Task
	rem  aggregate.Removable // nil → black-box path
	// tab is task.Table.Data(): the concrete columnar window. Hot loops
	// (predicate matching, value projection) use it directly so scoring a
	// view costs the same per row as scoring a table.
	tab     *relation.Table
	aggVals []float64 // tab's aggregate column; nil for count(*)

	outOrig   []float64 // original aggregate value per outlier group
	holdOrig  []float64
	outState  []aggregate.State // cached state(g), incremental path only
	holdState []aggregate.State

	calls atomic.Int64 // number of (group × predicate) delta evaluations
	cache scoreCache
}

// cacheShards is the number of score-cache stripes. Keys hash across
// shards, so concurrent workers scoring distinct predicates rarely contend
// on the same lock.
const cacheShards = 64

// scoreCache is a sharded, synchronized string→float64 memo table.
// Hit/miss counters are striped per shard (the shard struct is already a
// contention domain), so the memo hit rate is observable without adding
// a shared cache-line to the scoring hot path.
type scoreCache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu     sync.RWMutex
	m      map[string]float64
	hits   atomic.Int64
	misses atomic.Int64
}

func (c *scoreCache) init() {
	c.seed = maphash.MakeSeed()
	for i := range c.shards {
		c.shards[i].m = make(map[string]float64)
	}
}

func (c *scoreCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

func (c *scoreCache) get(key string) (float64, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return v, ok
}

func (c *scoreCache) stats() (hits, misses int64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// size reports the number of memoized entries and an estimate of their
// heap footprint: per-entry map overhead plus the interned key bytes.
func (c *scoreCache) size() (entries int, bytes int64) {
	// Rough per-entry cost of a map[string]float64 bucket slot: the string
	// header (16) + float64 (8) + amortized bucket/overflow overhead.
	const entryOverhead = 48
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			entries++
			bytes += int64(len(k)) + entryOverhead
		}
		sh.mu.RUnlock()
	}
	return entries, bytes
}

func (c *scoreCache) put(key string, v float64) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
}

func (c *scoreCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]float64)
		sh.mu.Unlock()
	}
}

// NewScorer builds a scorer, validating the task and choosing the
// incremental path when the aggregate supports it.
func NewScorer(task *Task) (*Scorer, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	s := &Scorer{task: task, tab: task.Table.Data()}
	if task.AggCol >= 0 {
		s.aggVals = s.tab.Floats(task.AggCol)
	}
	s.cache.init()
	if rem, ok := task.Agg.(aggregate.Removable); ok {
		s.rem = rem
	}
	init := func(groups []Group) ([]float64, []aggregate.State) {
		orig := make([]float64, len(groups))
		states := make([]aggregate.State, len(groups))
		for i, g := range groups {
			vals := task.groupValues(g)
			if s.rem != nil {
				states[i] = s.rem.State(vals)
				orig[i] = s.rem.Recover(states[i])
			} else {
				orig[i] = task.Agg.Compute(vals)
			}
		}
		return orig, states
	}
	s.outOrig, s.outState = init(task.Outliers)
	s.holdOrig, s.holdState = init(task.HoldOuts)
	return s, nil
}

// NewScorerSeeded builds a scorer whose per-group aggregate states are
// PROVIDED rather than computed — the streaming warm-start path (§5.1 meets
// live data): a stream tracker that maintained state(g) incrementally
// across append batches hands the states over, and the scorer skips the
// O(|D|) per-group projection pass entirely. Original aggregate values are
// recovered from the states.
//
// The task's aggregate must be incrementally removable, and outStates /
// holdStates must align 1:1 with task.Outliers / task.HoldOuts. States are
// cloned, so the caller may keep advancing its own copies afterwards.
func NewScorerSeeded(task *Task, outStates, holdStates []aggregate.State) (*Scorer, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	rem, ok := task.Agg.(aggregate.Removable)
	if !ok {
		return nil, fmt.Errorf("influence: seeded scorer requires an incrementally removable aggregate; %q is not", task.Agg.Name())
	}
	if len(outStates) != len(task.Outliers) || len(holdStates) != len(task.HoldOuts) {
		return nil, fmt.Errorf("influence: seeded states mismatch groups: %d/%d outliers, %d/%d hold-outs",
			len(outStates), len(task.Outliers), len(holdStates), len(task.HoldOuts))
	}
	s := &Scorer{task: task, tab: task.Table.Data(), rem: rem}
	if task.AggCol >= 0 {
		s.aggVals = s.tab.Floats(task.AggCol)
	}
	s.cache.init()
	adopt := func(states []aggregate.State) ([]float64, []aggregate.State) {
		orig := make([]float64, len(states))
		own := make([]aggregate.State, len(states))
		for i, st := range states {
			own[i] = st.Clone()
			orig[i] = rem.Recover(own[i])
		}
		return orig, own
	}
	s.outOrig, s.outState = adopt(outStates)
	s.holdOrig, s.holdState = adopt(holdStates)
	return s, nil
}

// Task returns the scorer's task.
func (s *Scorer) Task() *Task { return s.task }

// Incremental reports whether the scorer runs the §5.1 incremental path.
func (s *Scorer) Incremental() bool { return s.rem != nil }

// Calls reports how many Δ evaluations have run — (group × predicate)
// scorings plus the single-tuple evaluations the DT partitioner uses to
// label tuples. It is the Scorer cost metric used by the Merger
// optimization experiments and by the serving layer to demonstrate
// §8.3.3 partition reuse (a reused partitioning skips all re-labeling).
func (s *Scorer) Calls() int64 { return s.calls.Load() }

// MemoStats reports memo-cache hits and misses across all shards. The
// hit rate (hits / (hits+misses)) is the serving-layer signal for how
// much revisiting (merge expansions, refinement re-scores) a search did.
func (s *Scorer) MemoStats() (hits, misses int64) { return s.cache.stats() }

// MemoSize reports the number of memoized predicate scores and an estimate
// of the memo cache's heap footprint in bytes. The BENCH_memory lane tracks
// it next to provenance bytes/row; it walks every shard under its read
// lock, so it is a diagnostics call, not a hot-path one.
func (s *Scorer) MemoSize() (entries int, bytes int64) { return s.cache.size() }

// OutlierResult returns the cached original aggregate value of outlier i.
func (s *Scorer) OutlierResult(i int) float64 { return s.outOrig[i] }

// HoldOutResult returns the cached original aggregate value of hold-out i.
func (s *Scorer) HoldOutResult(i int) float64 { return s.holdOrig[i] }

// value returns the aggregate attribute of local row r (1 for count(*)) —
// the hot-path sibling of Task.Value, reading the slice cached at
// construction instead of going through the Relation interface per row.
func (s *Scorer) value(r int) float64 {
	if s.aggVals == nil {
		return 1
	}
	return s.aggVals[r]
}

// delta computes Δagg(group, p) and the number of matched tuples.
func (s *Scorer) delta(g Group, orig float64, state aggregate.State, p predicate.Predicate) (float64, int) {
	s.calls.Add(1)
	t := s.task
	matched := 0
	total := 0
	var matchedVals, restVals []float64
	if s.rem == nil {
		restVals = make([]float64, 0, g.Rows.Count())
	}
	g.Rows.ForEach(func(r int) {
		total++
		if p.Match(s.tab, r) {
			matched++
			if s.rem != nil {
				matchedVals = append(matchedVals, s.value(r))
			}
		} else if s.rem == nil {
			restVals = append(restVals, s.value(r))
		}
	})
	if matched == 0 {
		return 0, 0
	}
	if t.Perturb != nil {
		return s.perturbDelta(orig, state, matchedVals, restVals, matched), matched
	}
	if matched == total {
		// The predicate deletes the whole input group: the output would
		// disappear rather than move. For aggregates with a defined empty
		// value (SUM, COUNT → 0) use it; otherwise treat as non-influential.
		if es, ok := t.Agg.(aggregate.EmptySafe); ok {
			return orig - es.EmptyValue(), matched
		}
		return 0, matched
	}
	var updated float64
	if s.rem != nil {
		updated = s.rem.Recover(s.rem.Remove(state, s.rem.State(matchedVals)))
	} else {
		updated = t.Agg.Compute(restVals)
	}
	d := orig - updated
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return 0, matched
	}
	return d, matched
}

// perturbDelta computes the footnote-3 variant: matched values are replaced
// by the target value rather than deleted.
func (s *Scorer) perturbDelta(orig float64, state aggregate.State, matchedVals, restVals []float64, matched int) float64 {
	target := *s.task.Perturb
	replacement := make([]float64, matched)
	for i := range replacement {
		replacement[i] = target
	}
	var updated float64
	if s.rem != nil {
		st := s.rem.Remove(state, s.rem.State(matchedVals))
		st = s.rem.Update(st, s.rem.State(replacement))
		updated = s.rem.Recover(st)
	} else {
		updated = s.task.Agg.Compute(append(restVals, replacement...))
	}
	d := orig - updated
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return 0
	}
	return d
}

// scale applies the c-knob denominator: Δ / n^c with n = |p(g)| ≥ 1.
func (s *Scorer) scale(delta float64, n int) float64 {
	if n == 0 {
		return 0
	}
	if s.task.C == 0 {
		return delta
	}
	return delta / math.Pow(float64(n), s.task.C)
}

// OutlierInfluence computes inf(o_i, p, v_i) for outlier index i.
func (s *Scorer) OutlierInfluence(i int, p predicate.Predicate) float64 {
	g := s.task.Outliers[i]
	var st aggregate.State
	if s.rem != nil {
		st = s.outState[i]
	}
	d, n := s.delta(g, s.outOrig[i], st, p)
	return s.scale(d, n) * float64(g.Direction)
}

// HoldOutInfluence computes inf(h_i, p) (no error vector) for hold-out i.
func (s *Scorer) HoldOutInfluence(i int, p predicate.Predicate) float64 {
	g := s.task.HoldOuts[i]
	var st aggregate.State
	if s.rem != nil {
		st = s.holdState[i]
	}
	d, n := s.delta(g, s.holdOrig[i], st, p)
	return s.scale(d, n)
}

// InfluenceOutliersOnly computes inf(O, ∅, p, V) — the hold-out-free
// influence used by MC's conservative pruning (§6.2) — without the λ weight.
func (s *Scorer) InfluenceOutliersOnly(p predicate.Predicate) float64 {
	sum := 0.0
	for i := range s.task.Outliers {
		sum += s.OutlierInfluence(i, p)
	}
	return sum / float64(len(s.task.Outliers))
}

// Influence computes the full objective inf(O, H, p, V). Scores are memoized
// by the predicate's canonical key. Concurrent callers scoring the same
// predicate may both compute it (the computation is pure), but only one
// value is retained.
func (s *Scorer) Influence(p predicate.Predicate) float64 {
	key := p.Key()
	if v, ok := s.cache.get(key); ok {
		return v
	}
	v := s.influenceUncached(p)
	s.cache.put(key, v)
	return v
}

func (s *Scorer) influenceUncached(p predicate.Predicate) float64 {
	outPart, worstHold := s.Parts(p)
	return s.task.Lambda*outPart - (1-s.task.Lambda)*worstHold
}

// Parts returns the two components of the objective: the mean outlier
// influence and the hold-out penalty max_h |inf(h, p)| (0 without
// hold-outs), before the λ weighting.
func (s *Scorer) Parts(p predicate.Predicate) (outMean, holdPenalty float64) {
	outMean = s.InfluenceOutliersOnly(p)
	for i := range s.task.HoldOuts {
		if h := math.Abs(s.HoldOutInfluence(i, p)); h > holdPenalty {
			holdPenalty = h
		}
	}
	return outMean, holdPenalty
}

// TupleOutlierInfluence computes the influence of the single tuple at row r
// within outlier group i: Δagg(o, {t}) · v_o. Used by the DT partitioner to
// label tuples. Cost is O(1) on the incremental path.
func (s *Scorer) TupleOutlierInfluence(i, r int) float64 {
	return s.tupleInfluence(s.task.Outliers[i], s.outOrig[i], s.outStateAt(i), r) *
		float64(s.task.Outliers[i].Direction)
}

// TupleHoldOutInfluence computes Δagg(h, {t}) for row r of hold-out group i.
func (s *Scorer) TupleHoldOutInfluence(i, r int) float64 {
	return s.tupleInfluence(s.task.HoldOuts[i], s.holdOrig[i], s.holdStateAt(i), r)
}

func (s *Scorer) outStateAt(i int) aggregate.State {
	if s.rem == nil {
		return nil
	}
	return s.outState[i]
}

func (s *Scorer) holdStateAt(i int) aggregate.State {
	if s.rem == nil {
		return nil
	}
	return s.holdState[i]
}

func (s *Scorer) tupleInfluence(g Group, orig float64, state aggregate.State, r int) float64 {
	s.calls.Add(1)
	t := s.task
	if s.rem != nil {
		st := s.rem.Remove(state, s.rem.State([]float64{s.value(r)}))
		if t.Perturb != nil {
			st = s.rem.Update(st, s.rem.State([]float64{*t.Perturb}))
		}
		d := orig - s.rem.Recover(st)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return 0
		}
		return d
	}
	// Black-box: rebuild the group without row r (or with r's value
	// replaced, in perturbation mode).
	rest := make([]float64, 0, g.Rows.Count())
	g.Rows.ForEach(func(rr int) {
		if rr != r {
			rest = append(rest, s.value(rr))
		}
	})
	if t.Perturb != nil {
		rest = append(rest, *t.Perturb)
	}
	d := orig - t.Agg.Compute(rest)
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return 0
	}
	return d
}

// MaxTupleInfluence returns the maximum single-tuple influence of any tuple
// matched by p across the outlier groups — the upper bound used by MC's
// second pruning rule (§6.2).
func (s *Scorer) MaxTupleInfluence(p predicate.Predicate) float64 {
	best := math.Inf(-1)
	for i, g := range s.task.Outliers {
		g.Rows.ForEach(func(r int) {
			if p.Match(s.tab, r) {
				if v := s.TupleOutlierInfluence(i, r); v > best {
					best = v
				}
			}
		})
	}
	return best
}

// ResetCache clears the memoized predicate scores (used when the task's C
// changes between runs while keeping cached group states).
func (s *Scorer) ResetCache() { s.cache.reset() }

// SetC updates the task's c knob in place and clears the memoized
// predicate scores; the cached per-group aggregate states — which do not
// depend on c — are kept, so a c sweep pays only re-scoring, never state
// rebuilding. Not safe to call concurrently with scoring: callers (the
// Explainer's per-session c sweeps) serialize runs.
func (s *Scorer) SetC(c float64) error {
	if c < 0 {
		return fmt.Errorf("influence: c %v must be non-negative", c)
	}
	if s.task.C == c {
		return nil // same knob: the memoized scores stay valid
	}
	s.task.C = c
	s.cache.reset()
	return nil
}
