package influence

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// sensorsTable builds the paper's Table 1.
func sensorsTable(t testing.TB) *relation.Table {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "time", Kind: relation.Discrete},
		relation.Column{Name: "sensorid", Kind: relation.Discrete},
		relation.Column{Name: "voltage", Kind: relation.Continuous},
		relation.Column{Name: "humidity", Kind: relation.Continuous},
		relation.Column{Name: "temp", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	rows := []relation.Row{
		{relation.S("11AM"), relation.S("1"), relation.F(2.64), relation.F(0.4), relation.F(34)},
		{relation.S("11AM"), relation.S("2"), relation.F(2.65), relation.F(0.5), relation.F(35)},
		{relation.S("11AM"), relation.S("3"), relation.F(2.63), relation.F(0.4), relation.F(35)},
		{relation.S("12PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("12PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("12PM"), relation.S("3"), relation.F(2.3), relation.F(0.4), relation.F(100)},
		{relation.S("1PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("1PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("1PM"), relation.S("3"), relation.F(2.3), relation.F(0.5), relation.F(80)},
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}

// paperTask builds the running example: O = {12PM, 1PM} (too high),
// H = {11AM}, AVG(temp), λ=0.5, c=1.
func paperTask(t testing.TB) *Task {
	t.Helper()
	tbl := sensorsTable(t)
	q, err := query.FromSQL(tbl, "SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	get := func(key string) query.ResultRow {
		row, ok := res.Lookup(key)
		if !ok {
			t.Fatalf("missing group %q", key)
		}
		return row
	}
	return &Task{
		Table:  tbl,
		Agg:    aggregate.Avg{},
		AggCol: tbl.Schema().MustIndex("temp"),
		Outliers: []Group{
			{Key: "12PM", Rows: get("12PM").Group, Direction: TooHigh},
			{Key: "1PM", Rows: get("1PM").Group, Direction: TooHigh},
		},
		HoldOuts: []Group{
			{Key: "11AM", Rows: get("11AM").Group},
		},
		Lambda: 0.5,
		C:      1,
	}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTupleInfluencesMatchPaper(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Incremental() {
		t.Fatal("AVG should take the incremental path")
	}
	// §3.2: inf(α2, {T6}) = 21.6̄, inf(α2, {T4}) = −10.8̄ (v = <+1>).
	if got := s.TupleOutlierInfluence(0, 5); !almostEqual(got, 170.0/3-35) {
		t.Errorf("inf(T6) = %v, want %v", got, 170.0/3-35)
	}
	if got := s.TupleOutlierInfluence(0, 3); !almostEqual(got, 170.0/3-67.5) {
		t.Errorf("inf(T4) = %v, want %v", got, 170.0/3-67.5)
	}
}

func TestErrorVectorFlipsSign(t *testing.T) {
	task := paperTask(t)
	task.Outliers[0].Direction = TooLow
	task.Outliers[1].Direction = TooLow
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: with v = <−1>, T6's influence becomes −21.6̄ and T4's +10.8̄.
	if got := s.TupleOutlierInfluence(0, 5); !almostEqual(got, -(170.0/3 - 35)) {
		t.Errorf("inf(T6) = %v", got)
	}
	if got := s.TupleOutlierInfluence(0, 3); !almostEqual(got, 67.5-170.0/3) {
		t.Errorf("inf(T4) = %v", got)
	}
}

// voltagePredicate builds "voltage < 2.4", the ground-truth explanation.
func voltagePredicate(tbl *relation.Table) predicate.Predicate {
	col := tbl.Schema().MustIndex("voltage")
	return predicate.MustNew(predicate.NewRangeClause(col, "voltage", 0, 2.4, false))
}

func TestInfluenceOfVoltagePredicate(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	p := voltagePredicate(task.Table.Data())
	// α2: removes T6 → Δ = 56.6̄−35 = 21.6̄, |p(g)| = 1.
	if got := s.OutlierInfluence(0, p); !almostEqual(got, 170.0/3-35) {
		t.Errorf("outlier 12PM influence = %v", got)
	}
	// α3: removes T9 → Δ = 50−35 = 15.
	if got := s.OutlierInfluence(1, p); !almostEqual(got, 15) {
		t.Errorf("outlier 1PM influence = %v", got)
	}
	// Hold-out 11AM: nothing matched → 0.
	if got := s.HoldOutInfluence(0, p); got != 0 {
		t.Errorf("hold-out influence = %v", got)
	}
	// Full objective: 0.5 · mean(21.6̄, 15) − 0.5 · 0.
	want := 0.5 * ((170.0/3 - 35) + 15) / 2
	if got := s.Influence(p); !almostEqual(got, want) {
		t.Errorf("Influence = %v, want %v", got, want)
	}
}

func TestHoldOutPenalty(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	// "sensorid = 3" removes a tuple from every group including the hold-out.
	col := task.Table.Schema().MustIndex("sensorid")
	code, ok := task.Table.Dict(col).Lookup("3")
	if !ok {
		t.Fatal("no sensorid 3")
	}
	p := predicate.MustNew(predicate.NewSetClause(col, "sensorid", []int32{code}))
	// Hold-out 11AM: removing T3 (35) changes avg 34.6̄ → 34.5, Δ=0.16̄.
	wantHold := 104.0/3 - 34.5
	if got := s.HoldOutInfluence(0, p); !almostEqual(got, wantHold) {
		t.Errorf("hold-out influence = %v, want %v", got, wantHold)
	}
	outMean := ((170.0/3 - 35) + 15) / 2
	want := 0.5*outMean - 0.5*math.Abs(wantHold)
	if got := s.Influence(p); !almostEqual(got, want) {
		t.Errorf("Influence = %v, want %v", got, want)
	}
	// The hold-out-free score must exceed the penalized score.
	if s.InfluenceOutliersOnly(p) <= s.Influence(p) {
		t.Error("outliers-only influence should exceed penalized influence")
	}
}

func TestLambdaExtremes(t *testing.T) {
	task := paperTask(t)
	col := task.Table.Schema().MustIndex("sensorid")
	code, _ := task.Table.Dict(col).Lookup("3")
	p := predicate.MustNew(predicate.NewSetClause(col, "sensorid", []int32{code}))

	task.Lambda = 1 // ignore hold-outs entirely
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Influence(p), s.InfluenceOutliersOnly(p); !almostEqual(got, want) {
		t.Errorf("λ=1: Influence = %v, want %v", got, want)
	}

	task.Lambda = 0 // only hold-out stability matters
	s, err = NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Influence(p); got >= 0 {
		t.Errorf("λ=0: Influence = %v, want negative (pure penalty)", got)
	}
}

func TestCKnob(t *testing.T) {
	task := paperTask(t)
	// Predicate matching both high-temp tuples AND normal ones: temp >= 35
	// matches T4,T5,T6 in the 12PM group (3 tuples).
	col := task.Table.Schema().MustIndex("humidity")
	p := predicate.MustNew(predicate.NewRangeClause(col, "humidity", 0.3, 0.55, true))
	// p matches all tuples of every group (humidity always in range) →
	// whole-group removal; AVG has no empty value → Δ = 0.
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Influence(p); got != 0 {
		t.Errorf("whole-group predicate influence = %v, want 0", got)
	}

	// c = 0 must equal raw Δ; larger c shrinks multi-tuple influence.
	volt := voltagePredicate(task.Table.Data())
	task0 := *task
	task0.C = 0
	s0, _ := NewScorer(&task0)
	task1 := *task
	task1.C = 1
	s1, _ := NewScorer(&task1)
	// voltage<2.4 matches exactly 1 tuple per outlier group → same score.
	if !almostEqual(s0.Influence(volt), s1.Influence(volt)) {
		t.Errorf("single-tuple predicate: c=0 %v != c=1 %v", s0.Influence(volt), s1.Influence(volt))
	}
	// humidity ∈ [0.4, 0.55] matches 2 tuples per outlier group (T5,T6 and
	// T8,T9) and the entire hold-out group (Δ=0 there) → the 2^c denominator
	// is the only difference between c values.
	wide := predicate.MustNew(predicate.NewRangeClause(col, "humidity", 0.4, 0.55, true))
	i0, i1 := s0.Influence(wide), s1.Influence(wide)
	if i0 <= i1 {
		t.Errorf("c=0 should score the 2-tuple predicate higher: %v vs %v", i0, i1)
	}
	if !almostEqual(i0, 2*i1) {
		t.Errorf("2-tuple predicate: c=0 score %v should be 2× c=1 score %v", i0, i1)
	}
}

func TestEmptyPredicateMatchesNothing(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	col := task.Table.Schema().MustIndex("voltage")
	p := predicate.MustNew(predicate.NewRangeClause(col, "voltage", 900, 1000, false))
	if got := s.Influence(p); got != 0 {
		t.Errorf("no-match predicate influence = %v, want 0", got)
	}
}

func TestCountStarTask(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := query.FromSQL(tbl, "SELECT count(*), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	row, _ := res.Lookup("12PM")
	task := &Task{
		Table:    tbl,
		Agg:      aggregate.Count{},
		AggCol:   -1,
		Outliers: []Group{{Key: "12PM", Rows: row.Group, Direction: TooHigh}},
		Lambda:   0.5,
		C:        1,
	}
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	p := voltagePredicate(tbl)
	// COUNT removes 1 of 3 → Δ=1, |p(g)|=1 → influence 1; λ weight 0.5.
	if got := s.Influence(p); !almostEqual(got, 0.5) {
		t.Errorf("count influence = %v, want 0.5", got)
	}
}

func TestBlackBoxMatchesIncremental(t *testing.T) {
	task := paperTask(t)
	inc, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	// Same aggregate wrapped as a black-box UDA.
	black := *task
	black.Agg = aggregate.UDA{FuncName: "avg_udf", Fn: aggregate.Avg{}.Compute, IsIndependent: true}
	bb, err := NewScorer(&black)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Incremental() {
		t.Fatal("UDA must use the black-box path")
	}
	preds := []predicate.Predicate{
		voltagePredicate(task.Table.Data()),
		predicate.True(),
	}
	tempCol := task.Table.Schema().MustIndex("temp")
	preds = append(preds, predicate.MustNew(predicate.NewRangeClause(tempCol, "temp", 60, 200, true)))
	for _, p := range preds {
		a, b := inc.Influence(p), bb.Influence(p)
		// True() removes whole groups: AVG(∅) undefined → both paths yield 0.
		if !almostEqual(a, b) {
			t.Errorf("incremental %v != black-box %v for %v", a, b, p)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	base := paperTask(t)
	run := func(mutate func(*Task)) error {
		task := *base
		task.Outliers = append([]Group(nil), base.Outliers...)
		mutate(&task)
		_, err := NewScorer(&task)
		return err
	}
	if err := run(func(x *Task) { x.Table = nil }); err == nil {
		t.Error("nil table accepted")
	}
	if err := run(func(x *Task) { x.Agg = nil }); err == nil {
		t.Error("nil aggregate accepted")
	}
	if err := run(func(x *Task) { x.Outliers = nil }); err == nil {
		t.Error("empty outliers accepted")
	}
	if err := run(func(x *Task) { x.Lambda = 1.5 }); err == nil {
		t.Error("bad lambda accepted")
	}
	if err := run(func(x *Task) { x.C = -1 }); err == nil {
		t.Error("negative c accepted")
	}
	if err := run(func(x *Task) { x.Outliers[0].Direction = 0 }); err == nil {
		t.Error("missing error vector accepted")
	}
}

func TestScorerCallCountingAndCache(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	p := voltagePredicate(task.Table.Data())
	before := s.Calls()
	s.Influence(p)
	mid := s.Calls()
	if mid == before {
		t.Fatal("first Influence did no work")
	}
	s.Influence(p) // memoized
	if s.Calls() != mid {
		t.Error("memoized Influence re-evaluated deltas")
	}
	s.ResetCache()
	s.Influence(p)
	if s.Calls() == mid {
		t.Error("ResetCache did not clear memoization")
	}
}

// Property: for AVG over random groups, the incremental scorer and a
// black-box recomputation agree on random range predicates.
func TestIncrementalEqualsBlackBoxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := relation.MustSchema(
			relation.Column{Name: "g", Kind: relation.Discrete},
			relation.Column{Name: "x", Kind: relation.Continuous},
			relation.Column{Name: "v", Kind: relation.Continuous},
		)
		b := relation.NewBuilder(schema)
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			b.MustAppend(relation.Row{
				relation.S([]string{"a", "b"}[rng.Intn(2)]),
				relation.F(rng.Float64() * 100),
				relation.F(rng.Float64()*50 - 10),
			})
		}
		tbl := b.Build()
		q, err := query.FromSQL(tbl, "SELECT avg(v), g FROM t GROUP BY g")
		if err != nil {
			return false
		}
		res, err := q.Run()
		if err != nil || len(res.Rows) < 2 {
			return true // degenerate draw; skip
		}
		task := &Task{
			Table:    tbl,
			Agg:      aggregate.Avg{},
			AggCol:   tbl.Schema().MustIndex("v"),
			Outliers: []Group{{Key: res.Rows[0].Key, Rows: res.Rows[0].Group, Direction: TooHigh}},
			HoldOuts: []Group{{Key: res.Rows[1].Key, Rows: res.Rows[1].Group}},
			Lambda:   0.5,
			C:        rng.Float64(),
		}
		inc, err := NewScorer(task)
		if err != nil {
			return false
		}
		blackTask := *task
		blackTask.Agg = aggregate.UDA{FuncName: "avg2", Fn: aggregate.Avg{}.Compute}
		bb, err := NewScorer(&blackTask)
		if err != nil {
			return false
		}
		xCol := tbl.Schema().MustIndex("x")
		for k := 0; k < 5; k++ {
			lo := rng.Float64() * 90
			hi := lo + rng.Float64()*30
			p := predicate.MustNew(predicate.NewRangeClause(xCol, "x", lo, hi, rng.Intn(2) == 0))
			if math.Abs(inc.Influence(p)-bb.Influence(p)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTupleInfluence(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	// Over the whole space, the max single-tuple influence is T6's 21.6̄.
	got := s.MaxTupleInfluence(predicate.True())
	if !almostEqual(got, 170.0/3-35) {
		t.Errorf("MaxTupleInfluence(true) = %v, want %v", got, 170.0/3-35)
	}
	// Restricted to sensor 1: T4's influence is 56.6̄−67.5 = −10.83̄ and
	// T7's is 50−57.5 = −7.5; the max is T7's.
	col := task.Table.Schema().MustIndex("sensorid")
	code, _ := task.Table.Dict(col).Lookup("1")
	p := predicate.MustNew(predicate.NewSetClause(col, "sensorid", []int32{code}))
	got = s.MaxTupleInfluence(p)
	if !almostEqual(got, -7.5) {
		t.Errorf("MaxTupleInfluence(sensor1) = %v, want -7.5", got)
	}
}

func TestPartsDecomposition(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	col := task.Table.Schema().MustIndex("sensorid")
	code, _ := task.Table.Dict(col).Lookup("3")
	p := predicate.MustNew(predicate.NewSetClause(col, "sensorid", []int32{code}))
	outMean, holdPen := s.Parts(p)
	if got := s.Influence(p); !almostEqual(got, task.Lambda*outMean-(1-task.Lambda)*holdPen) {
		t.Errorf("Influence %v != λ·%v − (1−λ)·%v", got, outMean, holdPen)
	}
	if holdPen <= 0 {
		t.Errorf("hold-out penalty = %v, want positive (sensor 3 exists at 11AM)", holdPen)
	}
}

func TestTupleHoldOutInfluence(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	// Removing T1 (34) from the 11AM group: avg 34.6̄ → 35; Δ = −0.3̄.
	got := s.TupleHoldOutInfluence(0, 0)
	if !almostEqual(got, 104.0/3-35) {
		t.Errorf("TupleHoldOutInfluence(T1) = %v, want %v", got, 104.0/3-35)
	}
}

func TestBlackBoxTupleInfluence(t *testing.T) {
	task := paperTask(t)
	task.Agg = aggregate.UDA{FuncName: "avgbb", Fn: aggregate.Avg{}.Compute}
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TupleOutlierInfluence(0, 5); !almostEqual(got, 170.0/3-35) {
		t.Errorf("black-box inf(T6) = %v", got)
	}
	if got := s.TupleHoldOutInfluence(0, 0); !almostEqual(got, 104.0/3-35) {
		t.Errorf("black-box hold-out inf(T1) = %v", got)
	}
}

func TestOriginalResultAccessors(t *testing.T) {
	task := paperTask(t)
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OutlierResult(0); !almostEqual(got, 170.0/3) {
		t.Errorf("OutlierResult(0) = %v", got)
	}
	if got := s.HoldOutResult(0); !almostEqual(got, 104.0/3) {
		t.Errorf("HoldOutResult(0) = %v", got)
	}
	if s.Task() != task {
		t.Error("Task() identity lost")
	}
}

func TestPerturbationModeDelta(t *testing.T) {
	task := paperTask(t)
	target := 20.0
	task.Perturb = &target
	s, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	p := voltagePredicate(task.Table.Data())
	// 12PM: T6's 100 becomes 20 → avg{35,35,20} = 30; Δ = 56.6̄ − 30.
	if got := s.OutlierInfluence(0, p); !almostEqual(got, 170.0/3-30) {
		t.Errorf("perturb influence 12PM = %v, want %v", got, 170.0/3-30)
	}
	// 1PM: T9's 80 becomes 20 → avg{35,35,20} = 30; Δ = 50 − 30 = 20.
	if got := s.OutlierInfluence(1, p); !almostEqual(got, 20) {
		t.Errorf("perturb influence 1PM = %v, want 20", got)
	}
	// Tuple influence under perturbation: T6 from 100 → 20.
	if got := s.TupleOutlierInfluence(0, 5); !almostEqual(got, 170.0/3-30) {
		t.Errorf("perturb tuple influence T6 = %v", got)
	}
	// Whole-group predicates stay well-defined in perturbation mode.
	col := task.Table.Schema().MustIndex("humidity")
	whole := predicate.MustNew(predicate.NewRangeClause(col, "humidity", 0, 1, true))
	// All three 12PM temps become 20 → avg 20; Δ = 56.6̄ − 20, scaled by
	// the c=1 denominator |p(g)| = 3.
	if got := s.OutlierInfluence(0, whole); !almostEqual(got, (170.0/3-20)/3) {
		t.Errorf("perturb whole-group = %v, want %v", got, (170.0/3-20)/3)
	}
}

func TestPerturbationBlackBoxAgrees(t *testing.T) {
	task := paperTask(t)
	target := 20.0
	task.Perturb = &target
	inc, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	blackTask := *task
	blackTask.Agg = aggregate.UDA{FuncName: "avgbb", Fn: aggregate.Avg{}.Compute}
	bb, err := NewScorer(&blackTask)
	if err != nil {
		t.Fatal(err)
	}
	p := voltagePredicate(task.Table.Data())
	if a, b := inc.Influence(p), bb.Influence(p); !almostEqual(a, b) {
		t.Errorf("incremental %v != black-box %v in perturbation mode", a, b)
	}
	if a, b := inc.TupleOutlierInfluence(0, 5), bb.TupleOutlierInfluence(0, 5); !almostEqual(a, b) {
		t.Errorf("tuple influence %v != %v in perturbation mode", a, b)
	}
}

// TestScorerConcurrentUse hammers one shared Scorer from many goroutines
// (the parallel-search access pattern) and checks every concurrent result
// matches the serially computed value. Run under -race to verify the
// sharded cache and atomic call counter synchronize correctly.
func TestScorerConcurrentUse(t *testing.T) {
	task := paperTask(t)
	scorer, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	tbl := task.Table
	vCol := tbl.Schema().MustIndex("voltage")
	hCol := tbl.Schema().MustIndex("humidity")
	var preds []predicate.Predicate
	for i := 0; i < 16; i++ {
		lo := 2.2 + 0.05*float64(i%8)
		preds = append(preds, predicate.MustNew(
			predicate.NewRangeClause(vCol, "voltage", lo, lo+0.2, true)))
		preds = append(preds, predicate.MustNew(
			predicate.NewRangeClause(hCol, "humidity", 0.1*float64(i%5), 0.6, true)))
	}
	want := make([]float64, len(preds))
	serial, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		want[i] = serial.Influence(p)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, p := range preds {
					if got := scorer.Influence(p); got != want[i] {
						errs <- p.Key()
						return
					}
					_ = scorer.InfluenceOutliersOnly(p)
					_, _ = scorer.Parts(p)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for key := range errs {
		t.Errorf("concurrent Influence(%s) diverged from serial value", key)
	}
	if scorer.Calls() == 0 {
		t.Error("Calls() = 0 after concurrent scoring")
	}
}

// TestScorerResetCacheConcurrent checks ResetCache racing Influence keeps
// values correct (cached entries may vanish, never corrupt).
func TestScorerResetCacheConcurrent(t *testing.T) {
	task := paperTask(t)
	scorer, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	tbl := task.Table
	vCol := tbl.Schema().MustIndex("voltage")
	p := predicate.MustNew(predicate.NewRangeClause(vCol, "voltage", 2.2, 2.5, true))
	want := scorer.Influence(p)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := scorer.Influence(p); got != want {
					t.Errorf("Influence = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			scorer.ResetCache()
		}
	}()
	wg.Wait()
}

func TestSeededScorerMatchesPlainScorer(t *testing.T) {
	task := paperTask(t)
	plain, err := NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	rem := task.Agg.(aggregate.Removable)
	// Build the states externally — as a stream tracker maintaining them
	// across append batches would — and seed a second scorer with them.
	states := func(groups []Group) []aggregate.State {
		out := make([]aggregate.State, len(groups))
		for i, g := range groups {
			var vals []float64
			g.Rows.ForEach(func(r int) { vals = append(vals, task.Value(r)) })
			out[i] = rem.State(vals)
		}
		return out
	}
	outStates, holdStates := states(task.Outliers), states(task.HoldOuts)
	seeded, err := NewScorerSeeded(task, outStates, holdStates)
	if err != nil {
		t.Fatal(err)
	}
	if !seeded.Incremental() {
		t.Fatal("seeded scorer must run the incremental path")
	}
	for i := range task.Outliers {
		if !almostEqual(seeded.OutlierResult(i), plain.OutlierResult(i)) {
			t.Fatalf("outlier %d orig %v != %v", i, seeded.OutlierResult(i), plain.OutlierResult(i))
		}
	}
	p := voltagePredicate(sensorsTable(t))
	if a, b := seeded.Influence(p), plain.Influence(p); !almostEqual(a, b) {
		t.Fatalf("seeded influence %v != plain %v", a, b)
	}
	if a, b := seeded.TupleOutlierInfluence(0, 5), plain.TupleOutlierInfluence(0, 5); !almostEqual(a, b) {
		t.Fatalf("seeded tuple influence %v != plain %v", a, b)
	}
	// Seeding clones: mutating the caller's state afterwards must not
	// perturb the scorer.
	outStates[0][0] += 1000
	if a, b := seeded.OutlierResult(0), plain.OutlierResult(0); !almostEqual(a, b) {
		t.Fatalf("seeded scorer aliased caller state: %v != %v", a, b)
	}
}

func TestSeededScorerErrors(t *testing.T) {
	task := paperTask(t)
	rem := task.Agg.(aggregate.Removable)
	good := make([]aggregate.State, len(task.Outliers))
	for i := range good {
		good[i] = rem.State([]float64{1})
	}
	if _, err := NewScorerSeeded(task, good[:1], nil); err == nil {
		t.Fatal("state-count mismatch accepted")
	}
	black := *task
	black.Agg = aggregate.Median{}
	if _, err := NewScorerSeeded(&black, good, make([]aggregate.State, len(task.HoldOuts))); err == nil {
		t.Fatal("black-box aggregate accepted for seeding")
	}
}
