package estimate

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// fixture is a synthetic 4-group task (2 outliers, 2 hold-outs) whose
// aggregate values follow a chosen distribution, plus a pool of random
// predicates over its discrete and continuous attributes.
type fixture struct {
	task   *influence.Task
	scorer *influence.Scorer
	preds  []predicate.Predicate
}

// value draws one aggregate value for the named distribution.
func value(dist string, rng *rand.Rand) float64 {
	switch dist {
	case "constant":
		return 5
	case "heavy":
		// Pareto-ish tail, α ≈ 1.2: a few rows dominate the group sum.
		return math.Pow(1-rng.Float64(), -1/1.2)
	case "bimodal":
		if rng.Float64() < 0.1 {
			return 100
		}
		return 1
	default:
		panic("unknown distribution " + dist)
	}
}

func buildFixture(t testing.TB, dist string, agg aggregate.Func, nPreds int) *fixture {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "a", Kind: relation.Discrete},
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	rng := rand.New(rand.NewSource(42))
	groups := []string{"o1", "o2", "h1", "h2"}
	const perGroup = 1200
	for _, g := range groups {
		for i := 0; i < perGroup; i++ {
			b.MustAppend(relation.Row{
				relation.S(g),
				relation.S(fmt.Sprintf("a%d", rng.Intn(8))),
				relation.F(rng.Float64() * 100),
				relation.F(value(dist, rng)),
			})
		}
	}
	tbl := b.Build()

	rows := make(map[string]*relation.RowSet, len(groups))
	for _, g := range groups {
		rows[g] = relation.NewRowSet(tbl.NumRows())
	}
	gCol, aCol, xCol, vCol := 0, 1, 2, 3
	gCodes := tbl.Codes(gCol)
	gDict := tbl.Dict(gCol)
	for r := 0; r < tbl.NumRows(); r++ {
		rows[gDict.Value(gCodes[r])].Add(r)
	}

	aggCol := vCol
	if _, ok := agg.(aggregate.Count); ok {
		aggCol = -1
	}
	task := &influence.Task{
		Table:  tbl,
		Agg:    agg,
		AggCol: aggCol,
		Outliers: []influence.Group{
			{Key: "o1", Rows: rows["o1"], Direction: influence.TooHigh},
			{Key: "o2", Rows: rows["o2"], Direction: influence.TooHigh},
		},
		HoldOuts: []influence.Group{
			{Key: "h1", Rows: rows["h1"]},
			{Key: "h2", Rows: rows["h2"]},
		},
		Lambda: 0.5,
		C:      0.5,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}

	all := relation.NewRowSet(tbl.NumRows())
	for _, rs := range rows {
		all.Or(rs)
	}
	aCodes := tbl.DistinctCodes(aCol, all)
	prng := rand.New(rand.NewSource(7))
	var preds []predicate.Predicate
	for len(preds) < nPreds {
		var clauses []predicate.Clause
		// 1–2 discrete codes on "a", sometimes with a range on "x".
		k := 1 + prng.Intn(2)
		codes := make([]int32, 0, k)
		seen := map[int32]bool{}
		for len(codes) < k {
			c := aCodes[prng.Intn(len(aCodes))]
			if !seen[c] {
				seen[c] = true
				codes = append(codes, c)
			}
		}
		clauses = append(clauses, predicate.NewSetClause(aCol, "a", codes))
		if prng.Float64() < 0.5 {
			lo := prng.Float64() * 80
			clauses = append(clauses, predicate.NewRangeClause(xCol, "x", lo, lo+5+prng.Float64()*40, false))
		}
		preds = append(preds, predicate.MustNew(clauses...))
	}
	return &fixture{task: task, scorer: scorer, preds: preds}
}

func newTestEstimator(t testing.TB, fx *fixture) *Estimator {
	t.Helper()
	e := New(fx.scorer, Params{
		Epsilon:    0.1,
		Confidence: 0.95,
		Fractions:  []float64{0.05, 0.25},
		MinRows:    32,
	})
	if e == nil {
		t.Fatal("New returned nil for a supported task")
	}
	return e
}

// TestIntervalCoverage is the empirical coverage property test: across
// constant, heavy-tailed and bimodal aggregate-value distributions, the
// exact influence must lie inside the estimator's interval at every ladder
// level. The bounds are finite-sample-valid with joint coverage ≥ 95%, and
// empirical Bernstein is conservative on top of that, so with fixed seeds
// the test demands zero violations.
func TestIntervalCoverage(t *testing.T) {
	for _, dist := range []string{"constant", "heavy", "bimodal"} {
		t.Run(dist, func(t *testing.T) {
			fx := buildFixture(t, dist, aggregate.Sum{}, 150)
			est := newTestEstimator(t, fx)
			for _, p := range fx.preds {
				exact := fx.scorer.Influence(p)
				for level := 0; level < est.Levels(); level++ {
					iv := est.Influence(p, level)
					if exact < iv.Lo-1e-9 || exact > iv.Hi+1e-9 {
						t.Fatalf("%s level %d: exact influence %v outside [%v, %v] for %s",
							dist, level, exact, iv.Lo, iv.Hi, p.Key())
					}
				}
			}
		})
	}
}

// TestIntervalCoverageCount repeats the coverage property for COUNT, the
// other linear-Δ aggregate (values are implicit 1s; the zero-match tail and
// indicator Bernstein carry the whole interval).
func TestIntervalCoverageCount(t *testing.T) {
	fx := buildFixture(t, "constant", aggregate.Count{}, 100)
	est := newTestEstimator(t, fx)
	for _, p := range fx.preds {
		exact := fx.scorer.Influence(p)
		for level := 0; level < est.Levels(); level++ {
			iv := est.Influence(p, level)
			if exact < iv.Lo-1e-9 || exact > iv.Hi+1e-9 {
				t.Fatalf("level %d: exact influence %v outside [%v, %v] for %s",
					level, exact, iv.Lo, iv.Hi, p.Key())
			}
		}
	}
}

// TestOutlierIntervalBoundsObjective checks the pruning shortcut's
// soundness: λ·OutlierInterval.Hi — computed from the outlier strata alone —
// must upper-bound the full objective, because the hold-out penalty only
// subtracts.
func TestOutlierIntervalBoundsObjective(t *testing.T) {
	fx := buildFixture(t, "bimodal", aggregate.Sum{}, 100)
	est := newTestEstimator(t, fx)
	lambda := fx.task.Lambda
	for _, p := range fx.preds {
		exact := fx.scorer.Influence(p)
		for level := 0; level < est.Levels(); level++ {
			out := est.OutlierInterval(p, level)
			if upper := lambda * out.Hi; exact > upper+1e-9 {
				t.Fatalf("level %d: objective %v exceeds outlier-only upper bound %v for %s",
					level, exact, upper, p.Key())
			}
		}
	}
}

// TestEstimatorDeterministic: two estimators over the same scorer and params
// produce bit-identical intervals — the sample shuffles are seeded per
// (generation, group), never by global randomness.
func TestEstimatorDeterministic(t *testing.T) {
	fx := buildFixture(t, "heavy", aggregate.Sum{}, 60)
	a := newTestEstimator(t, fx)
	b := newTestEstimator(t, fx)
	for _, p := range fx.preds {
		for level := 0; level < a.Levels(); level++ {
			ia, ib := a.Influence(p, level), b.Influence(p, level)
			if ia != ib {
				t.Fatalf("level %d: intervals differ across estimators: %+v vs %+v", level, ia, ib)
			}
		}
	}
}

// TestScoreLadder drives Score directly: against a -Inf threshold every
// candidate escalates to its exact influence; against a +Inf threshold every
// candidate is pruned with an upper bound no smaller than its exact score
// would allow.
func TestScoreLadder(t *testing.T) {
	fx := buildFixture(t, "bimodal", aggregate.Sum{}, 60)
	est := newTestEstimator(t, fx)
	for _, p := range fx.preds {
		exact := fx.scorer.Influence(p)
		got, pruned := est.Score(p, math.Inf(-1))
		if pruned || got != exact {
			t.Fatalf("Score at -Inf threshold: got (%v, %v), want exact %v unpruned", got, pruned, exact)
		}
		upper, pruned := est.Score(p, math.Inf(1))
		if !pruned {
			t.Fatalf("Score at +Inf threshold did not prune %s", p.Key())
		}
		if exact > upper+1e-9 {
			t.Fatalf("pruning bound %v below exact %v for %s", upper, exact, p.Key())
		}
	}
}

// TestNewDeclinesUnsupported: AVG, perturbation mode and a non-positive
// epsilon all fall back to the exact path via a nil estimator.
func TestNewDeclinesUnsupported(t *testing.T) {
	fx := buildFixture(t, "constant", aggregate.Sum{}, 1)
	if e := New(fx.scorer, Params{Epsilon: 0}); e != nil {
		t.Error("New accepted epsilon 0")
	}

	avgTask := *fx.task
	avgTask.Agg = aggregate.Avg{}
	avgScorer, err := influence.NewScorer(&avgTask)
	if err != nil {
		t.Fatal(err)
	}
	if e := New(avgScorer, Params{Epsilon: 0.1}); e != nil {
		t.Error("New accepted an AVG task")
	}

	v := 1.0
	perturbTask := *fx.task
	perturbTask.Perturb = &v
	perturbScorer, err := influence.NewScorer(&perturbTask)
	if err != nil {
		t.Fatal(err)
	}
	if e := New(perturbScorer, Params{Epsilon: 0.1}); e != nil {
		t.Error("New accepted a perturbation task")
	}
	if s := NewSketch(avgScorer, 0); s != nil {
		t.Error("NewSketch accepted an AVG task")
	}
}

// TestSketchPenalty: the shard sketch's penalty estimate is deterministic,
// zero for predicates missing every hold-out, and in the ballpark of the
// exact penalty for predicates that hit them.
func TestSketchPenalty(t *testing.T) {
	fx := buildFixture(t, "bimodal", aggregate.Sum{}, 80)
	sk := NewSketch(fx.scorer, 0)
	if sk == nil {
		t.Fatal("NewSketch returned nil for a supported task with hold-outs")
	}
	sk2 := NewSketch(fx.scorer, 0)
	for _, p := range fx.preds {
		got, again := sk.Penalty(p), sk2.Penalty(p)
		if got != again {
			t.Fatalf("sketch penalty nondeterministic: %v vs %v", got, again)
		}
		if got < 0 {
			t.Fatalf("negative penalty %v", got)
		}
		_, exact := fx.scorer.Parts(p)
		if exact > 0 && got == 0 && p.Eval(fx.task.Table.Data(), fx.task.HoldOuts[0].Rows).Count() > 200 {
			t.Fatalf("sketch missed a broad hold-out predicate (exact penalty %v)", exact)
		}
		if exact == 0 && got > 1e-9 {
			// A 256-row sample of a ~1200-row group that contains no matched
			// row must estimate zero.
			if p.Eval(fx.task.Table.Data(), fx.task.HoldOuts[0].Rows).Count() == 0 &&
				p.Eval(fx.task.Table.Data(), fx.task.HoldOuts[1].Rows).Count() == 0 {
				t.Fatalf("sketch invented penalty %v for a no-match predicate", got)
			}
		}
	}
}
