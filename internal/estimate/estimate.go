// Package estimate is the progressive (anytime) scoring layer: sample-based
// influence estimates with distribution-sensitive confidence intervals, in
// the spirit of rapid approximate aggregation with interval guarantees
// (PAPERS.md). The exact influence.Scorer scans every row of every flagged
// group per predicate; the Estimator instead maintains per-group stratified
// row samples — each input group is a stratum, sampled uniformly without
// replacement at a ladder of increasing fractions — and computes a
// [lower, upper] interval for inf(O, H, p, V) from each prefix.
//
// The only probabilistic statement is about the MATCH COUNT: the sampled
// match frequency brackets the group's true matched-row count through
// finite-sample tail bounds (empirical Bernstein below, a Chernoff
// lower-tail inversion above, and the exact (1−m/n)^k zero-match tail when
// the sample matches nothing — all valid for sampling without replacement,
// which binomial tails dominate). Everything else is deterministic: the
// UNSAMPLED rows' aggregate values are known exactly, so given "at most t
// matched rows hide outside the sample", the matched sum can exceed the
// observed sample sum by at most the sum of the t largest unsampled values
// (and fall below it by at most the t smallest) — order statistics, not a
// concentration bound. Count and sum stay coupled through the |p(g)|^c
// denominator: the bound maximizes dir·s/max(1,cnt+t)^c over the hidden
// count t itself, so "many hidden rows" pays the selectivity penalty that
// a naive corner evaluation would ignore.
//
// The confidence budget is split (Bonferroni) across every per-group
// statistic and ladder level, so one Estimator interval holds with the
// requested confidence as a whole.
//
// Estimation applies to aggregates whose Δ is linear in the matched rows —
// SUM and COUNT, exactly the aggregates the MC path handles — and to
// deletion influence only. New returns nil for anything else (black-box
// UDAs, AVG, perturbation mode), which callers treat as "run exact".
package estimate

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/sample"
)

// DefaultConfidence is the interval confidence used when the knob is unset.
const DefaultConfidence = 0.95

// defaultMinRows is the smallest per-group sample any ladder level uses:
// below this, variance estimates are too noisy to prune anything anyway.
const defaultMinRows = 64

// defaultFractions is the refinement ladder: the per-group sample fraction
// at each level. The last level is deliberately well below 1 — a candidate
// still ambiguous after the ladder escalates to the exact scorer, which
// memoizes, so finishing the scan there is never wasted.
var defaultFractions = []float64{0.05, 0.25}

// Interval is a confidence interval over an influence value.
type Interval struct {
	Lo, Hi float64
}

// Params tunes an Estimator.
type Params struct {
	// Epsilon is the caller's per-rank error budget (the anytime knob);
	// must be > 0 — estimation is pointless on the exact path.
	Epsilon float64
	// Confidence is the interval coverage target in (0,1); 0 means
	// DefaultConfidence.
	Confidence float64
	// Fractions overrides the refinement-ladder sample fractions
	// (ascending, in (0,1]); nil means defaultFractions.
	Fractions []float64
	// MinRows overrides the per-group minimum sample size (default 64).
	MinRows int
	// Gen identifies the table state for seeding; 0 means the table's row
	// count (a generation proxy: an append reseeds, a re-run does not).
	Gen int64
	// Metrics, when non-nil, receives per-level ladder telemetry:
	// prune/escalate counters, interval-width and level-latency
	// histograms, each labelled by ladder level and sample fraction.
	// Nil (the default) keeps the ladder free of any telemetry cost.
	Metrics *obs.Registry
}

// widthBuckets spread interval widths, which are in influence units and
// therefore data-scaled, across decades.
var widthBuckets = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100, 1000}

// estMetrics holds the pre-resolved instruments so the ladder's hot loop
// never touches the registry maps.
type estMetrics struct {
	pruned    []*obs.Counter   // per level
	width     []*obs.Histogram // objective interval width per level
	seconds   []*obs.Histogram // level latency
	escalated *obs.Counter
}

func newEstMetrics(reg *obs.Registry, fractions []float64) *estMetrics {
	if reg == nil {
		return nil
	}
	m := &estMetrics{escalated: reg.Counter("scorpion_estimate_escalated_total")}
	for i, f := range fractions {
		labels := []string{"level", strconv.Itoa(i), "fraction", strconv.FormatFloat(f, 'g', -1, 64)}
		m.pruned = append(m.pruned, reg.Counter("scorpion_estimate_pruned_total", labels...))
		m.width = append(m.width, reg.Histogram("scorpion_estimate_interval_width", widthBuckets, labels...))
		m.seconds = append(m.seconds, reg.Histogram("scorpion_estimate_level_seconds", nil, labels...))
	}
	return m
}

// deltaKind classifies the supported linear-Δ aggregates.
type deltaKind int

const (
	kindSum deltaKind = iota
	kindCount
)

// nBands is the number of value strata per group: matched counts are
// bounded per band, so a predicate whose sample matched nothing among a
// group's high-valued rows cannot be charged many hidden high-value matches
// — only the band's zero-match tail. Bands are contiguous ranges of the
// value-sorted rows, so every value in band b+1 is >= every value in band b
// (the property the greedy hidden-mass allocation relies on).
const nBands = 4

// groupSample is one input group's stratum: its rows in a deterministic
// shuffled order (so every ladder level is a uniform without-replacement
// sample, and deeper levels extend shallower ones), the aggregate value per
// row, and per-level order statistics of the unsampled remainder.
type groupSample struct {
	rows   []int
	vals   []float64 // nil for COUNT (values never read)
	n      int
	dir    float64     // outlier error vector; 1 for hold-outs (penalty is |inf|)
	levels []int       // sample size per ladder level
	bandID []uint8     // value band per shuffled index (SUM only)
	tails  []levelTail // per level: hidden-mass order statistics (SUM only)
	// bandMin/bandMax are each band's full value range — the range constant
	// for the per-band empirical-Bernstein sum bound (SUM only).
	bandMin, bandMax []float64
}

// levelTail summarizes the rows OUTSIDE one ladder level's sample prefix.
// Their values are known exactly — only WHICH of them a predicate matches is
// unknown — so "at most t hidden matches" bounds the hidden matched sum by
// the sum of the t largest (resp. smallest) unsampled values. The fine view
// carries that bound per value band; the coarse view is the same bound
// unstratified (tighter when the count slack, not value placement,
// dominates). Intervals intersect both.
type levelTail struct {
	fine   []bandTail
	coarse bandTail
}

// bandTail is the hidden-mass summary of one value band at one level.
type bandTail struct {
	topPre []float64 // topPre[t] = sum of the t largest unsampled values
	botPre []float64 // botPre[t] = sum of the t smallest unsampled values
	pos    int       // strictly positive unsampled values
	neg    int       // strictly negative unsampled values
	kb     int       // sampled rows of this band at this level
	nb     int       // total rows of this band
}

// Estimator produces influence intervals for predicates at increasing
// sample fractions. It is immutable after construction and safe for
// concurrent use by every worker of a parallel search.
type Estimator struct {
	scorer  *influence.Scorer
	tab     *relation.Table
	kind    deltaKind
	lambda  float64
	c       float64
	epsilon float64
	conf    float64
	nLevels int
	out     []groupSample
	hold    []groupSample
	// logB = ln(3/δ) and logZ = ln(1/δ) for the per-statistic budget δ.
	logB, logZ float64
	met        *estMetrics // nil when telemetry is off
}

// Supported reports whether the task's influence can be interval-estimated:
// deletion influence under a linear-Δ aggregate (SUM or COUNT).
func Supported(task *influence.Task) bool {
	if task == nil || task.Perturb != nil {
		return false
	}
	switch task.Agg.(type) {
	case aggregate.Sum, aggregate.Count:
		return true
	}
	return false
}

// New builds an Estimator over the scorer's task, or nil when the task is
// unsupported or Epsilon is not positive — callers fall back to the exact
// path on nil.
func New(scorer *influence.Scorer, p Params) *Estimator {
	task := scorer.Task()
	if p.Epsilon <= 0 || !Supported(task) {
		return nil
	}
	if p.Confidence <= 0 || p.Confidence >= 1 {
		p.Confidence = DefaultConfidence
	}
	fractions := p.Fractions
	if len(fractions) == 0 {
		fractions = defaultFractions
	}
	minRows := p.MinRows
	if minRows <= 0 {
		minRows = defaultMinRows
	}
	tab := task.Table.Data()
	gen := p.Gen
	if gen == 0 {
		gen = int64(tab.NumRows())
	}
	e := &Estimator{
		scorer:  scorer,
		tab:     tab,
		lambda:  task.Lambda,
		c:       task.C,
		epsilon: p.Epsilon,
		conf:    p.Confidence,
		nLevels: len(fractions),
		met:     newEstMetrics(p.Metrics, fractions),
	}
	if _, ok := task.Agg.(aggregate.Count); ok {
		e.kind = kindCount
	}
	var aggVals []float64
	if e.kind == kindSum && task.AggCol >= 0 {
		aggVals = tab.Floats(task.AggCol)
	}
	build := func(g influence.Group, dir float64) groupSample {
		return newGroupSample(g, dir, aggVals, gen, fractions, minRows)
	}
	for _, g := range task.Outliers {
		e.out = append(e.out, build(g, float64(g.Direction)))
	}
	for _, g := range task.HoldOuts {
		// Hold-outs carry dir = 1: the penalty takes |inf|, so the sign is
		// folded in by PenaltyInterval, not the per-group direction.
		e.hold = append(e.hold, build(g, 1))
	}
	// Bonferroni: each group-level uses 2 count statistics (upper + lower)
	// per value band plus 2 for the unstratified view, and SUM additionally
	// spends 2 per band on the masked-value mean (the Bernstein sum bound).
	// COUNT has no value bands, so it pays for the coarse pair only.
	statsPerGL := 2
	if aggVals != nil {
		statsPerGL = 2*(nBands+1) + 2*nBands
	}
	nStats := statsPerGL * (len(e.out) + len(e.hold)) * e.nLevels
	delta := (1 - e.conf) / float64(nStats)
	e.logB = math.Log(3 / delta)
	e.logZ = math.Log(1 / delta)
	return e
}

// newGroupSample shuffles a group's rows under its deterministic
// per-(generation, group) seed and precomputes the ladder sizes and the
// population value range.
func newGroupSample(g influence.Group, dir float64, aggVals []float64, gen int64, fractions []float64, minRows int) groupSample {
	gs := groupSample{dir: dir, rows: make([]int, 0, g.Rows.Count())}
	g.Rows.ForEach(func(r int) { gs.rows = append(gs.rows, r) })
	gs.n = len(gs.rows)
	rng := rand.New(rand.NewSource(sample.GroupSeed(gen, g.Key)))
	rng.Shuffle(gs.n, func(i, j int) { gs.rows[i], gs.rows[j] = gs.rows[j], gs.rows[i] })
	if aggVals != nil {
		gs.vals = make([]float64, gs.n)
		for i, r := range gs.rows {
			gs.vals[i] = aggVals[r]
		}
	}
	gs.levels = make([]int, len(fractions))
	for i, f := range fractions {
		k := int(math.Ceil(f * float64(gs.n)))
		if k < minRows {
			k = minRows
		}
		if k > gs.n {
			k = gs.n
		}
		gs.levels[i] = k
	}
	if gs.vals != nil {
		// Value bands: rank the shuffled indices by value and split the
		// ranking into nBands contiguous chunks, so band b+1's every value
		// is >= band b's.
		order := make([]int, gs.n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return gs.vals[order[a]] < gs.vals[order[b]] })
		gs.bandID = make([]uint8, gs.n)
		gs.bandMin = make([]float64, nBands)
		gs.bandMax = make([]float64, nBands)
		for b := range gs.bandMin {
			gs.bandMin[b] = math.Inf(1)
			gs.bandMax[b] = math.Inf(-1)
		}
		for rank, idx := range order {
			b := rank * nBands / gs.n
			gs.bandID[idx] = uint8(b)
			v := gs.vals[idx]
			if v < gs.bandMin[b] {
				gs.bandMin[b] = v
			}
			if v > gs.bandMax[b] {
				gs.bandMax[b] = v
			}
		}
		gs.tails = make([]levelTail, len(gs.levels))
		for li, k := range gs.levels {
			if k >= gs.n {
				continue
			}
			lt := levelTail{fine: make([]bandTail, nBands)}
			for i := 0; i < gs.n; i++ {
				bt := &lt.fine[gs.bandID[i]]
				bt.nb++
				if i < k {
					bt.kb++
				}
			}
			buckets := make([][]float64, nBands)
			rest := make([]float64, 0, gs.n-k)
			for i := k; i < gs.n; i++ {
				b := gs.bandID[i]
				buckets[b] = append(buckets[b], gs.vals[i])
				rest = append(rest, gs.vals[i])
			}
			for b := range lt.fine {
				fillTail(&lt.fine[b], buckets[b])
			}
			lt.coarse = bandTail{kb: k, nb: gs.n}
			fillTail(&lt.coarse, rest)
			gs.tails[li] = lt
		}
	}
	return gs
}

// fillTail sorts a band's unsampled values and precomputes both prefix-sum
// directions plus the sign counts the greedy allocation needs.
func fillTail(bt *bandTail, vals []float64) {
	sort.Float64s(vals)
	m := len(vals)
	bt.topPre = make([]float64, m+1)
	bt.botPre = make([]float64, m+1)
	for t := 1; t <= m; t++ {
		bt.botPre[t] = bt.botPre[t-1] + vals[t-1]
		bt.topPre[t] = bt.topPre[t-1] + vals[m-t]
	}
	for _, v := range vals {
		if v > 0 {
			bt.pos++
		} else if v < 0 {
			bt.neg++
		}
	}
}

// Epsilon returns the per-rank error budget the Estimator was built with.
func (e *Estimator) Epsilon() float64 { return e.epsilon }

// Confidence returns the resolved interval coverage target.
func (e *Estimator) Confidence() float64 { return e.conf }

// Levels returns the refinement-ladder depth.
func (e *Estimator) Levels() int { return e.nLevels }

// groupInterval scans the group's level-th sample prefix for p and bounds
// the group's influence dir·Δ/|p(g)|^c.
//
// The true matched count is m = cnt + t, where cnt is observed in the sample
// and t is the unknown number of matches hiding among the n−k unsampled
// rows. Only t is probabilistic: its range comes from inverting tail bounds
// on the sampled count (binomial tails dominate the without-replacement
// hypergeometric). Given t, the matched sum is bracketed deterministically
// by the sums of the t largest / smallest unsampled values — order
// statistics precomputed in restTail — and the interval maximizes
// dir·s/max(1, cnt+t)^c jointly over t, so a large hidden mass cannot dodge
// its own selectivity penalty.
func (e *Estimator) groupInterval(g *groupSample, p predicate.Predicate, level int) Interval {
	k := g.levels[level]
	var cnts [nBands]int
	var bsum, bsq [nBands]float64
	cnt := 0
	var sumZ float64
	if g.vals == nil {
		for i := 0; i < k; i++ {
			if p.Match(e.tab, g.rows[i]) {
				cnt++
			}
		}
		sumZ = float64(cnt)
	} else {
		for i := 0; i < k; i++ {
			if p.Match(e.tab, g.rows[i]) {
				cnt++
				b := g.bandID[i]
				v := g.vals[i]
				cnts[b]++
				bsum[b] += v
				bsq[b] += v * v
				sumZ += v
			}
		}
	}
	if k == g.n {
		v := e.scaled(g.dir, sumZ, float64(cnt))
		return Interval{Lo: v, Hi: v}
	}
	if g.vals == nil {
		// COUNT: Δ = m = cnt + t, so dir·m^(1−c) with a jump at m = 0; the
		// pieces are monotone in t, so the extremes lie at {tLo, tHi, m=1}.
		tLo, tHi := e.countBounds(cnt, k, g.n)
		lo, hi := math.Inf(1), math.Inf(-1)
		add := func(t int) {
			m := float64(cnt + t)
			v := e.scaled(g.dir, m, m)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		add(tLo)
		add(tHi)
		if t1 := 1 - cnt; t1 > tLo && t1 < tHi {
			add(t1)
		}
		return Interval{Lo: lo, Hi: hi}
	}
	lt := &g.tails[level]
	iv := e.tailSweep(g.dir, sumZ, cnt, []*bandTail{&lt.coarse}, []int{cnt})
	fine := make([]*bandTail, nBands)
	fcnts := make([]int, nBands)
	for b := range lt.fine {
		fine[b] = &lt.fine[b]
		fcnts[b] = cnts[b]
	}
	ivf := e.tailSweep(g.dir, sumZ, cnt, fine, fcnts)
	ivb := e.bandSumInterval(g, lt, cnts[:], bsum[:], bsq[:], sumZ, cnt, k)
	// All three views hold at their own budget; the intersection is the bound.
	return Interval{
		Lo: math.Max(iv.Lo, math.Max(ivf.Lo, ivb.Lo)),
		Hi: math.Min(iv.Hi, math.Min(ivf.Hi, ivb.Hi)),
	}
}

// bandSumInterval is the third view: within each band, the masked value
// y_i = v_i·1[p matches row i] over the band's sampled rows estimates the
// band's TOTAL matched sum directly — empirical Bernstein with the band's
// value range as the range constant, so a band of near-equal values
// contributes almost no slack regardless of how uncertain its matched count
// is. Each band's hidden mass is the tighter of this and its order-statistic
// bracket; the denominator takes the per-band count brackets (intersected
// with the unstratified one) adversarially per sign.
func (e *Estimator) bandSumInterval(g *groupSample, lt *levelTail, cnts []int, bsum, bsq []float64, sumZ float64, cnt, k int) Interval {
	nLo, nHi := sumZ, sumZ
	tTotLo, tTotHi := 0, 0
	for b := range lt.fine {
		bt := &lt.fine[b]
		tLo, tHi := e.countBounds(cnts[b], bt.kb, bt.nb)
		tTotLo += tLo
		tTotHi += tHi
		hidHi := bt.topPre[clampInt(bt.pos, tLo, tHi)]
		hidLo := bt.botPre[clampInt(bt.neg, tLo, tHi)]
		if bt.kb > 1 && bt.kb < bt.nb {
			fk := float64(bt.kb)
			mean := bsum[b] / fk
			vr := math.Max(0, bsq[b]/fk-mean*mean) * fk / (fk - 1)
			r := math.Max(g.bandMax[b], 0) - math.Min(g.bandMin[b], 0)
			h := math.Sqrt(2*vr*e.logB/fk) + 3*r*e.logB/fk
			nb := float64(bt.nb)
			hidHi = math.Min(hidHi, nb*(mean+h)-bsum[b])
			hidLo = math.Max(hidLo, nb*(mean-h)-bsum[b])
		}
		nHi += hidHi
		nLo += hidLo
	}
	if ctLo, ctHi := e.countBounds(cnt, k, g.n); true {
		tTotLo = max(tTotLo, ctLo)
		tTotHi = min(tTotHi, ctHi)
		if tTotHi < tTotLo {
			tTotHi = tTotLo
		}
	}
	dLo := math.Pow(math.Max(1, float64(cnt+tTotLo)), e.c)
	dHi := math.Pow(math.Max(1, float64(cnt+tTotHi)), e.c)
	uLo, uHi := g.dir*nLo, g.dir*nHi
	if uLo > uHi {
		uLo, uHi = uHi, uLo
	}
	var iv Interval
	if uHi >= 0 {
		iv.Hi = uHi / dLo
	} else {
		iv.Hi = uHi / dHi
	}
	if uLo >= 0 {
		iv.Lo = uLo / dHi
	} else {
		iv.Lo = uLo / dLo
	}
	return iv
}

func clampInt(v, a, b int) int {
	if v < a {
		return a
	}
	if v > b {
		return b
	}
	return v
}

// scaled is the exact influence form dir·Δ/max(1,m)^c (Δ = 0 ⇒ 0).
func (e *Estimator) scaled(dir, delta, m float64) float64 {
	if e.c == 0 {
		return dir * delta
	}
	return dir * delta / math.Pow(math.Max(1, m), e.c)
}

// countBounds brackets one band's hidden match count t given cnt observed
// matches among the kb sampled of its nb rows.
//
// Upper: invert the lower Chernoff tail of the sampled count —
// P(Binom(kb, m/nb) ≤ cnt) ≤ exp(−(μ−cnt)²/2μ) at μ = kb·m/nb, so with
// probability ≥ 1−δ, μ ≤ cnt + ln(1/δ) + sqrt(ln(1/δ)² + 2·cnt·ln(1/δ)); at
// cnt = 0 the exact miss probability (1−m/nb)^kb ≤ e^(−μ) is tighter.
// Lower: empirical Bernstein on the 0/1 match indicator (and the cnt
// matched rows seen certainly exist). Binomial tails dominate the
// without-replacement hypergeometric, so both transfer.
func (e *Estimator) countBounds(cnt, kb, nb int) (tLo, tHi int) {
	if kb == 0 {
		return 0, nb
	}
	if kb == nb {
		return 0, 0
	}
	n, fk, fcnt := float64(nb), float64(kb), float64(cnt)
	muHi := fcnt + e.logZ + math.Sqrt(e.logZ*e.logZ+2*fcnt*e.logZ)
	if cnt == 0 {
		muHi = e.logZ
	}
	mHi := math.Min(n, n*muHi/fk)
	pHat := fcnt / fk
	vInd := pHat * (1 - pHat) * fk / math.Max(1, fk-1)
	hInd := math.Sqrt(2*vInd*e.logB/fk) + 3*e.logB/fk
	mLo := math.Max(fcnt, n*(pHat-hInd))
	tLo = int(math.Ceil(mLo-1e-9)) - cnt
	if tLo < 0 {
		tLo = 0
	}
	tHi = int(math.Floor(mHi+1e-9)) - cnt
	if tHi > nb-kb {
		tHi = nb - kb
	}
	if tHi < tLo {
		tHi = tLo
	}
	return tLo, tHi
}

// tailSweep bounds dir·s/max(1, cnt+t)^c over the total hidden-match count
// t = Σ_b t_b, with each band's t_b bracketed by countBounds and its hidden
// sum bracketed by the band's order statistics. bands are value-ascending
// (every value in band b+1 >= every value in band b), so the maximal hidden
// sum for a given total t allocates greedily from the top band down (and
// the minimal from the bottom band up) — making the numerator extremes
// concave/convex in t, exact at segment endpoints plus the single point
// where the greedy marginal changes sign. The denominator varies at most
// 1.25× per segment, bounding the sweep's slack at 1.25^c.
func (e *Estimator) tailSweep(dir, sumZ float64, cnt int, bands []*bandTail, cnts []int) Interval {
	nb := len(bands)
	tLo := make([]int, nb)
	tHi := make([]int, nb)
	tLoTot, tHiTot := 0, 0
	tPos, tNeg := 0, 0
	for b, bt := range bands {
		tLo[b], tHi[b] = e.countBounds(cnts[b], bt.kb, bt.nb)
		tLoTot += tLo[b]
		tHiTot += tHi[b]
		if extra := min(tHi[b], bt.pos) - tLo[b]; extra > 0 {
			tPos += extra
		}
		if extra := min(tHi[b], bt.neg) - tLo[b]; extra > 0 {
			tNeg += extra
		}
	}
	tPos += tLoTot
	tNeg += tLoTot
	fMax := func(t int) float64 {
		rem := t - tLoTot
		s := sumZ
		for b := nb - 1; b >= 0; b-- {
			take := tLo[b]
			if rem > 0 {
				extra := min(rem, tHi[b]-tLo[b])
				take += extra
				rem -= extra
			}
			s += bands[b].topPre[take]
		}
		return s
	}
	fMin := func(t int) float64 {
		rem := t - tLoTot
		s := sumZ
		for b := 0; b < nb; b++ {
			take := tLo[b]
			if rem > 0 {
				extra := min(rem, tHi[b]-tLo[b])
				take += extra
				rem -= extra
			}
			s += bands[b].botPre[take]
		}
		return s
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	seg := func(a, b int) {
		sHi := math.Max(fMax(a), fMax(b))
		if tPos > a && tPos < b {
			sHi = math.Max(sHi, fMax(tPos))
		}
		sLo := math.Min(fMin(a), fMin(b))
		if tNeg > a && tNeg < b {
			sLo = math.Min(sLo, fMin(tNeg))
		}
		dLo := math.Pow(math.Max(1, float64(cnt+a)), e.c)
		dHi := math.Pow(math.Max(1, float64(cnt+b)), e.c)
		uLo, uHi := dir*sLo, dir*sHi
		if uLo > uHi {
			uLo, uHi = uHi, uLo
		}
		if uHi >= 0 {
			hi = math.Max(hi, uHi/dLo)
		} else {
			hi = math.Max(hi, uHi/dHi)
		}
		if uLo >= 0 {
			lo = math.Min(lo, uLo/dHi)
		} else {
			lo = math.Min(lo, uLo/dLo)
		}
	}
	for a := tLoTot; ; {
		b := a + (cnt+a)/4 + 1
		if b > tHiTot {
			b = tHiTot
		}
		seg(a, b)
		if b == tHiTot {
			break
		}
		a = b + 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// OutlierInterval bounds the mean outlier influence (1/|O|)Σ_o inf(o,p,v_o)
// at the given ladder level — the λ-free quantity MC's pruning compares. It
// reads only the outlier strata, so a candidate whose upper bound already
// fails the frontier is rejected without touching a single hold-out row.
func (e *Estimator) OutlierInterval(p predicate.Predicate, level int) Interval {
	var lo, hi float64
	for i := range e.out {
		g := &e.out[i]
		iv := e.groupInterval(g, p, level)
		lo += iv.Lo
		hi += iv.Hi
	}
	n := float64(len(e.out))
	return Interval{Lo: lo / n, Hi: hi / n}
}

// PenaltyInterval bounds the hold-out penalty max_h |inf(h, p)| at the given
// ladder level. Without hold-outs it is exactly [0,0].
func (e *Estimator) PenaltyInterval(p predicate.Predicate, level int) Interval {
	var pen Interval
	for i := range e.hold {
		g := &e.hold[i]
		iv := e.groupInterval(g, p, level)
		absLo := 0.0
		if iv.Lo > 0 || iv.Hi < 0 {
			absLo = math.Min(math.Abs(iv.Lo), math.Abs(iv.Hi))
		}
		absHi := math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi))
		pen.Lo = math.Max(pen.Lo, absLo)
		pen.Hi = math.Max(pen.Hi, absHi)
	}
	return pen
}

// Influence bounds the full objective λ·outMean − (1−λ)·holdPenalty at the
// given ladder level.
func (e *Estimator) Influence(p predicate.Predicate, level int) Interval {
	out := e.OutlierInterval(p, level)
	pen := e.PenaltyInterval(p, level)
	return Interval{
		Lo: e.lambda*out.Lo - (1-e.lambda)*pen.Hi,
		Hi: e.lambda*out.Hi - (1-e.lambda)*pen.Lo,
	}
}

// Score runs the refinement ladder for p against a top-k frontier threshold:
// at each level it first bounds the objective from above using the outlier
// strata alone (the penalty is never negative), pruning the candidate the
// moment that bound falls below the threshold; a candidate whose interval
// separates ABOVE the threshold stops refining early and escalates to the
// exact scorer, as does one still ambiguous after the last level.
//
// The second return is true when the candidate was pruned (the first is
// then its final upper bound); otherwise the first return is the exact,
// memoized influence and the candidate counts as escalated. A threshold of
// -Inf (frontier not yet full) always escalates.
func (e *Estimator) Score(p predicate.Predicate, threshold float64) (float64, bool) {
	if !math.IsInf(threshold, -1) {
		for level := 0; level < e.nLevels; level++ {
			var levelStart time.Time
			if e.met != nil {
				levelStart = time.Now()
			}
			out := e.OutlierInterval(p, level)
			upper := e.lambda * out.Hi
			if e.met != nil {
				e.met.width[level].Observe(e.lambda * (out.Hi - out.Lo))
				e.met.seconds[level].Observe(time.Since(levelStart).Seconds())
			}
			if upper < threshold {
				if e.met != nil {
					e.met.pruned[level].Inc()
				}
				return upper, true
			}
			// The penalty term only subtracts, so the early-escalate test
			// below can pass only if the outlier side alone clears the
			// threshold; checking that first skips the hold-out scan (the
			// bulk of a level's cost) for every candidate not at the
			// frontier, without changing a single ladder decision.
			if e.lambda*out.Lo > threshold {
				pen := e.PenaltyInterval(p, level)
				if e.lambda*out.Lo-(1-e.lambda)*pen.Hi > threshold {
					break
				}
			}
		}
	}
	if e.met != nil {
		e.met.escalated.Inc()
	}
	return e.scorer.Influence(p), false
}
