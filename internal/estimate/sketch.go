package estimate

import (
	"math"
	"math/rand"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/sample"
)

// defaultSketchRows is the per-hold-out-group sample size a Sketch keeps.
const defaultSketchRows = 256

// Sketch is a tiny full-table hold-out sample the shard coordinator ships
// to its shard searches: shard-local rankings are hold-out-blind whenever a
// window carries few (or no) hold-out rows, so the strongest shard
// candidates tend to be the widest ones and the per-shard top-k cut can
// starve the combiner of the λ-optimal box. Penalty estimates a candidate's
// GLOBAL hold-out penalty from the sketch — a point estimate, cheap enough
// to run on every shard candidate before the cut; the combiner's exact
// re-score still settles final scores.
//
// A Sketch is immutable after construction and safe for concurrent use.
type Sketch struct {
	tab    *relation.Table
	c      float64
	kind   deltaKind
	groups []sketchGroup
}

type sketchGroup struct {
	rows []int
	vals []float64 // nil for COUNT
	n    int
	k    int
}

// NewSketch samples each hold-out group of the scorer's FULL-table task, or
// returns nil when the task has no hold-outs or an unsupported aggregate.
// rowsPerGroup ≤ 0 uses the default (256).
func NewSketch(scorer *influence.Scorer, rowsPerGroup int) *Sketch {
	task := scorer.Task()
	if !Supported(task) || len(task.HoldOuts) == 0 {
		return nil
	}
	if rowsPerGroup <= 0 {
		rowsPerGroup = defaultSketchRows
	}
	tab := task.Table.Data()
	s := &Sketch{tab: tab, c: task.C}
	var aggVals []float64
	if _, ok := task.Agg.(aggregate.Count); ok {
		s.kind = kindCount
	} else if task.AggCol >= 0 {
		aggVals = tab.Floats(task.AggCol)
	}
	gen := int64(tab.NumRows())
	for _, g := range task.HoldOuts {
		sg := sketchGroup{rows: make([]int, 0, g.Rows.Count())}
		g.Rows.ForEach(func(r int) { sg.rows = append(sg.rows, r) })
		sg.n = len(sg.rows)
		rng := rand.New(rand.NewSource(sample.GroupSeed(gen, g.Key)))
		rng.Shuffle(sg.n, func(i, j int) { sg.rows[i], sg.rows[j] = sg.rows[j], sg.rows[i] })
		sg.k = rowsPerGroup
		if sg.k > sg.n {
			sg.k = sg.n
		}
		sg.rows = sg.rows[:sg.k]
		if aggVals != nil {
			sg.vals = make([]float64, sg.k)
			for i, r := range sg.rows {
				sg.vals[i] = aggVals[r]
			}
		}
		s.groups = append(s.groups, sg)
	}
	return s
}

// Penalty estimates max_h |inf(h, p)| for a (base-table) predicate from the
// per-group sketches: matched count and sum scale up by each group's
// sampling rate, then feed the same Δ/|p(g)|^c form the exact scorer uses.
func (s *Sketch) Penalty(p predicate.Predicate) float64 {
	worst := 0.0
	for i := range s.groups {
		g := &s.groups[i]
		cnt := 0
		var sum float64
		if g.vals == nil {
			for _, r := range g.rows {
				if p.Match(s.tab, r) {
					cnt++
				}
			}
			sum = float64(cnt)
		} else {
			for j, r := range g.rows {
				if p.Match(s.tab, r) {
					cnt++
					sum += g.vals[j]
				}
			}
		}
		if cnt == 0 {
			continue
		}
		up := float64(g.n) / float64(g.k)
		m := float64(cnt) * up
		delta := sum * up
		if s.kind == kindCount {
			delta = m
		}
		inf := delta
		if s.c != 0 {
			inf = delta / math.Pow(math.Max(1, m), s.c)
		}
		if a := math.Abs(inf); a > worst {
			worst = a
		}
	}
	return worst
}
